package trace

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrOversize reports that a workload's instruction budget exceeds the
// store's resident budget, so the store refuses to materialize it.
// Recording is eager and not cancellable, so an unbounded request would
// hold a worker (and the memory for the full stream) hostage; callers
// fall back to live generation, which is lazy and honors run
// cancellation.
var ErrOversize = errors.New("trace: artifact exceeds store budget")

// DefaultArtifactBudget is the in-memory retention budget of an
// ArtifactStore, in recorded instructions, when the caller passes 0. At
// 24 bytes per recorded instruction this keeps resident recordings
// under ~100 MB while holding dozens of sweep-sized traces.
const DefaultArtifactBudget = 4_000_000

// ArtifactStats counts how an ArtifactStore satisfied Cursor and Put
// requests since creation.
type ArtifactStats struct {
	// MemoryHits counts cursors served from a resident recording.
	MemoryHits uint64
	// DiskHits counts cursors whose recording was loaded from the
	// store's cache directory.
	DiskHits uint64
	// Generated counts recordings produced by running the workload
	// generator live — the expensive path every other counter avoids.
	Generated uint64
	// Received counts artifacts installed via Put (shipped by a
	// coordinator or uploaded through the API).
	Received uint64
	// CorruptRegens counts disk cache files that failed to decode (or
	// decoded to a different identity than their address) and were
	// regenerated over. A non-zero value means the cache directory is
	// losing integrity — disk fault, torn write from a foreign process,
	// or a mismatched artifact copied in by hand.
	CorruptRegens uint64
}

// artifactRec is one resident recording plus the identity it was
// addressed under.
type artifactRec struct {
	key   string
	name  string
	insts uint64
	rep   *Replay
}

// ArtifactStore is a content-addressed cache of recorded workload
// streams. It layers three sources, cheapest first: resident
// recordings (shared, handed out as independent cursors), a disk
// directory of compressed artifacts keyed by content address, and live
// generation from the named workload's builder. Generation is
// singleflighted per address, so concurrent requests for the same spec
// cost one run of the generator.
//
// All methods are safe for concurrent use. Generation and disk I/O run
// outside the store lock.
type ArtifactStore struct {
	dir    string // "" = memory-only
	budget uint64 // resident budget in recorded instructions

	mu       sync.Mutex
	recs     map[string]*artifactRec
	order    []string // keys, least recently used first
	held     uint64   // recorded instructions resident across recs
	inflight map[string]chan struct{}
	stats    ArtifactStats

	// log receives warnings the store would otherwise swallow (corrupt
	// cache files). Defaults to the process logger; SetLogger overrides.
	log *slog.Logger
}

// NewArtifactStore opens a store backed by dir (created if missing; ""
// for a memory-only store). budgetInsts bounds resident recordings in
// recorded instructions; 0 means DefaultArtifactBudget. Disk artifacts
// are not budgeted — they are small (compressed) and shared across
// processes, which is the point of having them.
func NewArtifactStore(dir string, budgetInsts uint64) (*ArtifactStore, error) {
	if budgetInsts == 0 {
		budgetInsts = DefaultArtifactBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace: artifact store: %w", err)
		}
	}
	return &ArtifactStore{
		dir:      dir,
		budget:   budgetInsts,
		recs:     make(map[string]*artifactRec),
		inflight: make(map[string]chan struct{}),
		log:      slog.Default(),
	}, nil
}

// SetLogger directs the store's warnings (corrupt cache files) to log.
// Call before the store sees traffic.
func (s *ArtifactStore) SetLogger(log *slog.Logger) {
	if log != nil {
		s.log = log
	}
}

// Stats returns a snapshot of the store's counters.
func (s *ArtifactStore) Stats() ArtifactStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Cursor returns a replay cursor over the recorded stream of the named
// workload at the given budget, materializing the recording (from
// memory, disk, or live generation, in that order) if needed. Each call
// gets an independent position over the shared recording, so cursors
// can replay concurrently. Requests larger than the store budget return
// ErrOversize — callers fall back to the live generator.
func (s *ArtifactStore) Cursor(name string, insts uint64) (*Replay, error) {
	rec, err := s.ensure(name, insts)
	if err != nil {
		return nil, err
	}
	return rec.rep.Cursor(), nil
}

// Artifact returns the content address and encoded bytes of the named
// workload's artifact, materializing the recording first if needed.
// Used by coordinators to ship a trace to workers.
func (s *ArtifactStore) Artifact(name string, insts uint64) (string, []byte, error) {
	rec, err := s.ensure(name, insts)
	if err != nil {
		return "", nil, err
	}
	if s.dir != "" {
		if data, err := os.ReadFile(s.path(rec.key)); err == nil {
			return rec.key, data, nil
		}
	}
	data, err := encodeArtifact(rec.name, rec.insts, rec.rep)
	return rec.key, data, err
}

// Export returns the encoded bytes of the artifact stored under key,
// if present in memory or on disk. Unlike Artifact it never generates:
// a content address alone does not say which workload to run.
func (s *ArtifactStore) Export(key string) ([]byte, bool) {
	s.mu.Lock()
	rec := s.recs[key]
	s.mu.Unlock()
	if rec != nil {
		if data, err := encodeArtifact(rec.name, rec.insts, rec.rep); err == nil {
			return data, true
		}
	}
	if s.dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			return data, true
		}
	}
	return nil, false
}

// Put installs an externally produced artifact under key, verifying
// that the decoded content actually hashes to that address before
// accepting it. The recording becomes resident and, for disk-backed
// stores, is persisted for later processes.
func (s *ArtifactStore) Put(key string, data []byte) error {
	name, insts, rep, err := ReadArtifact(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if got := ArtifactKey(name, insts); got != key {
		return fmt.Errorf("trace: artifact content is %s (workload %q, %d insts), stored under %s", got, name, insts, key)
	}
	if insts > s.budget {
		return fmt.Errorf("%w (%d insts > budget %d)", ErrOversize, insts, s.budget)
	}
	if s.dir != "" {
		if err := s.persistBytes(key, data); err != nil {
			return err
		}
	}
	// A shipped external stream also registers the workload name, so a
	// sweep point referencing "ext:<hash>" validates on this node after
	// pre-shipping even though the node never saw the original upload.
	// An artifact that recorded fewer instructions than its addressed
	// budget is the whole trace (the stream ended early); one that
	// exactly fills the budget may be a prefix of a longer trace, so it
	// registers as incomplete and yields to longer recordings.
	if base, _ := SplitStreamName(name); IsExternalName(base) {
		if _, err := RegisterExternal(base, rep, insts > uint64(rep.Len())); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.install(&artifactRec{key: key, name: name, insts: insts, rep: rep})
	s.stats.Received++
	s.mu.Unlock()
	return nil
}

// PutRecording installs an in-memory recording as the artifact of the
// named workload at its full recorded length, persisting it for
// disk-backed stores, and returns its content address. This is the
// upload path: a daemon that converted an external trace registers the
// recording here so later sweeps find it resident and restarts recover
// it from disk.
func (s *ArtifactStore) PutRecording(name string, rep *Replay) (string, error) {
	insts := uint64(rep.Len())
	if insts == 0 {
		return "", fmt.Errorf("trace: refusing to store empty recording for %q", name)
	}
	if insts > s.budget {
		return "", fmt.Errorf("%w (%d insts > budget %d)", ErrOversize, insts, s.budget)
	}
	key := ArtifactKey(name, insts)
	if s.dir != "" {
		data, err := encodeArtifact(name, insts, rep)
		if err != nil {
			return "", err
		}
		if err := s.persistBytes(key, data); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.install(&artifactRec{key: key, name: name, insts: insts, rep: rep})
	s.stats.Received++
	s.mu.Unlock()
	return key, nil
}

// RehydrateExternal scans the store's cache directory for artifacts of
// external workloads and re-registers their names, so specs referencing
// "ext:<hash>" validate again after a restart. Artifacts whose content
// does not hash back to their filename are skipped (and counted as
// corrupt). Returns the number of names registered.
func (s *ArtifactStore) RehydrateExternal() (int, error) {
	if s.dir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	registered := 0
	for _, e := range entries {
		key, ok := strings.CutSuffix(e.Name(), artifactFileSuffix)
		if !ok || e.IsDir() {
			continue
		}
		// Cheap pre-filter: decode only the header far enough to see the
		// workload name, then fully decode external ones.
		f, err := os.Open(s.path(key))
		if err != nil {
			continue
		}
		name, peekErr := peekArtifactName(f)
		f.Close()
		if peekErr != nil || !IsExternalName(name) {
			continue
		}
		f, err = os.Open(s.path(key))
		if err != nil {
			continue
		}
		gotName, gotInsts, rep, err := ReadArtifact(f)
		f.Close()
		if err != nil || ArtifactKey(gotName, gotInsts) != key {
			s.mu.Lock()
			s.stats.CorruptRegens++
			s.mu.Unlock()
			s.log.Warn("external trace artifact failed rehydration", "path", s.path(key), "err", err)
			continue
		}
		if ok, err := RegisterExternal(gotName, rep, gotInsts > uint64(rep.Len())); err == nil && ok {
			registered++
		}
	}
	return registered, nil
}

// ensure returns the resident recording for (name, insts), loading or
// generating it under a per-key singleflight so concurrent callers
// share one materialization.
func (s *ArtifactStore) ensure(name string, insts uint64) (*artifactRec, error) {
	if insts > s.budget {
		return nil, fmt.Errorf("%w (%d insts > budget %d)", ErrOversize, insts, s.budget)
	}
	key := ArtifactKey(name, insts)
	for {
		s.mu.Lock()
		if rec, ok := s.recs[key]; ok {
			s.touch(key)
			s.stats.MemoryHits++
			s.mu.Unlock()
			return rec, nil
		}
		if ch, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-ch
			continue // the winner installed it (or failed); re-check
		}
		ch := make(chan struct{})
		s.inflight[key] = ch
		s.mu.Unlock()

		rec, fromDisk, err := s.load(key, name, insts)
		s.mu.Lock()
		delete(s.inflight, key)
		close(ch)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.install(rec)
		if fromDisk {
			s.stats.DiskHits++
		} else {
			s.stats.Generated++
		}
		s.mu.Unlock()
		return rec, nil
	}
}

// load materializes a recording outside the store lock: from the cache
// directory when a valid artifact exists there, otherwise by running
// the workload generator. Freshly generated recordings are persisted
// best-effort — a full disk must not fail the run the recording was
// materialized for.
func (s *ArtifactStore) load(key, name string, insts uint64) (rec *artifactRec, fromDisk bool, err error) {
	if s.dir != "" {
		if f, err := os.Open(s.path(key)); err == nil {
			gotName, gotInsts, rep, err := ReadArtifact(f)
			f.Close()
			if err == nil && gotName == name && gotInsts == insts {
				return &artifactRec{key: key, name: name, insts: insts, rep: rep}, true, nil
			}
			// Corrupt or mismatched cache file: count it, say which file,
			// and fall through to regenerate over it. Without the counter
			// this path is invisible — a flaky disk looks like a slightly
			// colder cache.
			if err == nil {
				err = fmt.Errorf("content is workload %q at %d insts, expected %q at %d", gotName, gotInsts, name, insts)
			}
			s.mu.Lock()
			s.stats.CorruptRegens++
			s.mu.Unlock()
			s.log.Warn("trace artifact cache file corrupt, regenerating",
				"path", s.path(key), "workload", name, "insts", insts, "err", err)
		}
	}
	gen, ok := BuildStream(name, insts)
	if !ok {
		return nil, false, fmt.Errorf("trace: artifact store: unknown workload %q", name)
	}
	rep := Record(gen, 0)
	rec = &artifactRec{key: key, name: name, insts: insts, rep: rep}
	if s.dir != "" {
		if data, err := encodeArtifact(name, insts, rep); err == nil {
			_ = s.persistBytes(key, data)
		}
	}
	return rec, false, nil
}

// install makes rec resident and evicts least-recently-used recordings
// past the budget. Outstanding cursors keep evicted recordings alive;
// eviction only stops new cursors from sharing them. Callers hold s.mu.
func (s *ArtifactStore) install(rec *artifactRec) {
	if _, ok := s.recs[rec.key]; ok {
		return // raced with another installer; keep the incumbent
	}
	s.recs[rec.key] = rec
	s.order = append(s.order, rec.key)
	s.held += uint64(rec.rep.Len())
	for s.held > s.budget && len(s.order) > 1 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old := s.recs[oldest]; old != nil {
			s.held -= uint64(old.rep.Len())
			delete(s.recs, oldest)
		}
	}
}

// touch moves key to the most-recently-used end. Callers hold s.mu.
func (s *ArtifactStore) touch(key string) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}

// persistBytes atomically writes an encoded artifact into the cache
// directory (temp file + rename, so concurrent processes sharing the
// directory never observe a partial artifact).
func (s *ArtifactStore) persistBytes(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// path returns the cache file for a content address.
func (s *ArtifactStore) path(key string) string {
	return filepath.Join(s.dir, key+artifactFileSuffix)
}
