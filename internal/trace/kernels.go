package trace

// A kernel is a small program state machine that appends one loop
// iteration (or comparable chunk) of micro-ops per emit call. Each
// kernel models one of the load-behaviour classes the paper's component
// predictors target (Section IV-A):
//
//	constKernel       Pattern-1: PC correlates with the load value (LVP)
//	listing1Kernel    the paper's Listing-1 memset + sweep loop
//	strideKernel      Pattern-2: PC correlates with the load address (SAP)
//	ctxValueKernel    Pattern-3: value correlates with branch history (CVP)
//	callsiteKernel    Pattern-3: address correlates with load path (CAP)
//	storeUpdateKernel store-to-load traffic (conflicting stores)
//	chaseKernel       serialized pointer chasing, largely unpredictable
//	flakyKernel       short-lived strides that break confidence
//	randomKernel      unpredictable addresses and values, cache-hostile
//	aluKernel         non-memory dependency chains and biased branches
type kernel interface {
	emit(e *emitter)
}

// xs is the kernels' private deterministic RNG.
type xs uint64

func (x *xs) next() uint64 {
	s := uint64(*x)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	*x = xs(s)
	return s * 0x2545F4914F6CDD1D
}

func (x *xs) intn(n int) int { return int(x.next() % uint64(n)) }

// regWindow hands each kernel a disjoint register range so kernels do
// not create artificial cross-kernel dependences.
type regWindow struct{ base Reg }

func (r regWindow) reg(i int) Reg { return r.base + Reg(i) }

// constKernel models global-pointer reloads: each static load always
// reads the same never-rewritten slot (the classic last-value pattern),
// and the loaded value is a base pointer feeding a dependent data load —
// so predicting the constant un-serializes the address computation.
type constKernel struct {
	pc     uint64
	rw     regWindow
	slots  []uint64 // constant slot addresses (hold base pointers)
	data   uint64   // data region the base pointers point into
	i      int
	inited bool
}

func newConstKernel(pc uint64, rw regWindow, region uint64, nConsts int) *constKernel {
	k := &constKernel{pc: pc, rw: rw, data: region + 1<<20}
	for i := 0; i < nConsts; i++ {
		k.slots = append(k.slots, region+uint64(i)*64)
	}
	return k
}

func (k *constKernel) emit(e *emitter) {
	base, val, cnt := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	if !k.inited {
		// Plant the base pointers once; the slots are never rewritten,
		// so each const load's value is stable forever after.
		for j, slot := range k.slots {
			ipc := k.pc + 0x300 + uint64(j%8)*8
			e.alu(ipc, base, base, 0)
			e.store(ipc+4, base, 0, slot, 8, k.data+uint64(j)*4096)
		}
		k.inited = true
	}
	j := k.i % len(k.slots)
	pc := k.pc + uint64(j)*32
	ptr := e.load(pc, base, 0, k.slots[j], 8)    // reload the global pointer
	e.load(pc+4, val, base, ptr+uint64(j)*16, 8) // dependent field access
	e.alu(pc+8, cnt, cnt, val)
	e.branch(pc+12, cnt, true, k.pc)
	k.i++
}

// listing1Kernel is the paper's Listing 1: an outer loop that memsets
// an N-element array and an inner loop that reads it back. After the
// memset the loads all return zero — Pattern-1 by the paper's priority
// ordering — while the addresses stride through the array.
type listing1Kernel struct {
	pc       uint64
	rw       regWindow
	base     uint64
	n        int // inner trip count (N)
	elemSize uint8

	phase int // 0 = memset, 1 = inner loop
	i     int
	outer int
}

func newListing1Kernel(pc uint64, rw regWindow, base uint64, n int) *listing1Kernel {
	return &listing1Kernel{pc: pc, rw: rw, base: base, n: n, elemSize: 4}
}

func (k *listing1Kernel) emit(e *emitter) {
	idx, val, sum := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	addr := k.base + uint64(k.i)*uint64(k.elemSize)
	if k.phase == 0 {
		// memset(A, 0, N*sizeof(*A)): one store per element.
		e.alu(k.pc, idx, idx, 0)
		e.store(k.pc+4, 0, idx, addr, k.elemSize, 0)
		e.branch(k.pc+8, idx, k.i < k.n-1, k.pc)
		if k.i++; k.i == k.n {
			k.phase, k.i = 1, 0
		}
		return
	}
	// for (i = 0; i < N; i++) { a += A[i]; }
	inner := k.pc + 0x40
	e.alu(inner, idx, idx, 0)
	e.load(inner+4, val, idx, addr, k.elemSize)
	e.alu(inner+8, sum, sum, val)
	e.branch(inner+12, idx, k.i < k.n-1, inner)
	if k.i++; k.i == k.n {
		k.phase, k.i = 0, 0
		k.outer++
	}
}

// strideKernel sweeps a large array with a fixed element stride. The
// data is cold backing fill — effectively unique per element — so the
// value is unpredictable but the address is perfectly strided
// (Pattern-2). The sweep restarts when it reaches the end, breaking the
// stride once per pass.
type strideKernel struct {
	pc     uint64
	rw     regWindow
	base   uint64
	length int
	stride uint64
	size   uint8
	i      int
}

func newStrideKernel(pc uint64, rw regWindow, base uint64, length int, stride uint64, size uint8) *strideKernel {
	return &strideKernel{pc: pc, rw: rw, base: base, length: length, stride: stride, size: size}
}

func (k *strideKernel) emit(e *emitter) {
	idx, val, acc := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	addr := k.base + uint64(k.i)*k.stride
	e.alu(k.pc, idx, idx, 0)
	e.load(k.pc+4, val, idx, addr, k.size)
	e.alu(k.pc+8, acc, acc, val)
	e.aluLat(k.pc+12, acc, acc, val, 3) // multiply-accumulate consumer
	e.branch(k.pc+16, idx, k.i < k.length-1, k.pc)
	if k.i++; k.i == k.length {
		k.i = 0
	}
}

// ctxValueKernel walks a short, permuted cycle of table slots inside a
// counted inner loop: each load's address is the previous load's value
// (a serialized chain), the values are fixed per inner-loop position,
// and the loop branch pattern pins the position into the branch
// history. LVP fails (the value changes every iteration), SAP fails
// (the permutation has no stride), CAP fails (the load path history is
// constant in steady state) — but CVP learns value-per-history and
// breaks the chain (Pattern-3, value flavour).
type ctxValueKernel struct {
	pc     uint64
	rw     regWindow
	base   uint64
	n      int
	step   int
	cur    uint64 // current slot index (the previous load's value)
	inited bool
}

func newCtxValueKernel(pc uint64, rw regWindow, base uint64, n int) *ctxValueKernel {
	return &ctxValueKernel{pc: pc, rw: rw, base: base, n: n}
}

func (k *ctxValueKernel) emit(e *emitter) {
	idx, acc := k.rw.reg(0), k.rw.reg(1)
	if !k.inited {
		// Lay out a fixed permutation cycle: slot perm[j] holds the
		// index of slot perm[j+1]. Seeded by the table base so every
		// instance differs but deterministically.
		rng := xs(k.base | 1)
		perm := make([]uint64, k.n)
		for j := range perm {
			perm[j] = uint64(j)
		}
		for j := k.n - 1; j > 0; j-- {
			o := rng.intn(j + 1)
			perm[j], perm[o] = perm[o], perm[j]
		}
		for j := 0; j < k.n; j++ {
			ipc := k.pc + 0x200 + uint64(j%8)*8
			e.alu(ipc, idx, idx, 0)
			e.store(ipc+4, idx, 0, k.base+perm[j]*8, 8, perm[(j+1)%k.n])
		}
		k.cur = perm[0]
		k.inited = true
	}
	// idx = T[idx]: serialized through the loaded value.
	next := e.load(k.pc, idx, idx, k.base+k.cur*8, 8)
	e.alu(k.pc+4, acc, acc, idx)
	e.branch(k.pc+8, acc, k.step < k.n-1, k.pc)
	k.cur = next
	if k.step++; k.step == k.n {
		k.step = 0
	}
}

// callsiteKernel models a shared routine whose load address depends on
// the call site: each site performs its own site-local loads (imprinting
// the load path history) before the shared load reads through a
// site-specific pointer. The pointed-to data is rewritten periodically,
// so the shared load's value drifts — the cache probe still returns the
// current value, which is CAP's advantage (Pattern-3, address flavour).
type callsiteKernel struct {
	pc          uint64
	rw          regWindow
	sites       int
	ptrs        []uint64 // per-site target addresses
	locals      []uint64 // per-site local data addresses
	i           int
	site        int
	epoch       uint64
	updateEvery int
}

func newCallsiteKernel(pc uint64, rw regWindow, region uint64, sites, updateEvery int) *callsiteKernel {
	k := &callsiteKernel{pc: pc, rw: rw, sites: sites, updateEvery: updateEvery}
	for s := 0; s < sites; s++ {
		k.ptrs = append(k.ptrs, region+0x1000+uint64(s)*256)
		k.locals = append(k.locals, region+uint64(s)*64)
	}
	return k
}

func (k *callsiteKernel) emit(e *emitter) {
	ptr, tmp, data, siteSel := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2), k.rw.reg(3)

	if k.updateEvery > 0 && k.i%(k.sites*k.updateEvery) == 0 {
		// Occasional producer phase: re-bind every site's object — the
		// slot at ptrs[s] now points at a different data block. The
		// shared load's *address* stays put while its *value* drifts:
		// CAP's probe returns the freshly bound pointer, value
		// predictors must retrain (the DLVP advantage).
		k.epoch++
		for s := 0; s < k.sites; s++ {
			spc := k.pc + 0x400 + uint64(s)*8
			e.alu(spc, tmp, tmp, 0)
			newBlock := k.ptrs[s] + 0x4000 + (k.epoch%4)*0x800
			e.store(spc+4, tmp, 0, k.ptrs[s], 8, newBlock)
		}
	}

	site := k.site % k.sites

	// Site-local preamble: a load unique to this call site (imprints
	// the load path history). Its address depends on the previous
	// iteration's dispatch value — the loop-carried serialization of an
	// interpreter/vtable dispatch loop.
	sitePC := k.pc + uint64(site)*0x40
	e.buf = append(e.buf, Inst{
		PC: sitePC, Op: OpLoad, Dst: tmp, Src1: siteSel,
		Addr: k.locals[site], Size: 8,
		Value: e.mem.Read(k.locals[site], 8), Lat: 1,
	})
	e.alu(sitePC+4, ptr, tmp, 0)
	e.call(sitePC+8, k.pc+0x200)

	// Shared routine: the object load's address depends on the caller;
	// the field access depends on the object; the next dispatch depends
	// on the field. Every link is a load something in the composite can
	// predict.
	shared := k.pc + 0x200
	obj := e.load(shared, tmp, ptr, k.ptrs[site], 8)
	field := e.load(shared+4, data, tmp, obj+16, 8)
	e.alu(shared+8, siteSel, data, 0) // compute next dispatch target
	e.ret(shared+12, sitePC+12)

	k.site = int(field % uint64(k.sites))
	k.i++
}

// storeUpdateKernel writes a location and reads it back shortly after:
// classic store-to-load forwarding traffic with ever-changing values.
// Value predictors cannot learn it; address predictors lock onto the
// fixed address but risk reading stale data, reproducing the
// conflicting-store hazard that motivates DLVP's checks.
type storeUpdateKernel struct {
	pc  uint64
	rw  regWindow
	loc uint64
	ctr uint64
}

func newStoreUpdateKernel(pc uint64, rw regWindow, loc uint64) *storeUpdateKernel {
	return &storeUpdateKernel{pc: pc, rw: rw, loc: loc}
}

func (k *storeUpdateKernel) emit(e *emitter) {
	v, w, acc := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	k.ctr++
	e.alu(k.pc, v, v, 0) // produce the new value
	e.store(k.pc+4, v, 0, k.loc, 8, k.ctr)
	e.alu(k.pc+8, w, acc, 0)
	e.load(k.pc+12, w, 0, k.loc, 8) // reads the just-stored counter
	e.alu(k.pc+16, acc, acc, w)
	e.branch(k.pc+20, acc, true, k.pc)
}

// chaseKernel walks a pointer ring: each load's address is the previous
// load's value, a serialized dependence chain. With a permuted ring the
// stream defeats all four predictors — this is the latency-bound,
// mcf-like behaviour where value prediction cannot help.
type chaseKernel struct {
	pc     uint64
	rw     regWindow
	base   uint64
	n      int
	cur    uint64
	inited bool
	rng    xs
}

func newChaseKernel(pc uint64, rw regWindow, base uint64, n int, seed uint64) *chaseKernel {
	return &chaseKernel{pc: pc, rw: rw, base: base, n: n, rng: xs(seed | 1)}
}

func (k *chaseKernel) emit(e *emitter) {
	if !k.inited {
		// Build a random ring permutation of n slots, 64 bytes apart.
		perm := make([]int, k.n)
		for i := range perm {
			perm[i] = i
		}
		for i := k.n - 1; i > 0; i-- {
			j := k.rng.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		slot := func(i int) uint64 { return k.base + uint64(i)*64 }
		ptr := k.rw.reg(0)
		for i := 0; i < k.n; i++ {
			ipc := k.pc + 0x200 + uint64(i%16)*8
			e.alu(ipc, ptr, ptr, 0)
			e.store(ipc+4, ptr, 0, slot(perm[i]), 8, slot(perm[(i+1)%k.n]))
		}
		k.cur = slot(perm[0])
		k.inited = true
	}
	p, acc := k.rw.reg(0), k.rw.reg(1)
	next := e.load(k.pc, p, p, k.cur, 8) // p = *p
	e.alu(k.pc+4, acc, acc, p)
	e.branch(k.pc+8, acc, true, k.pc)
	k.cur = next
}

// seqChaseKernel walks a linked list whose nodes were allocated
// sequentially: each node's next pointer is the following slot. The
// traversal is a serialized load→load dependence chain (each address is
// the previous value), but the *addresses* stride perfectly — exactly
// the case where address prediction breaks the serialization and buys
// large speedups. The chain restarts at the ring end, breaking the
// stride once per lap.
type seqChaseKernel struct {
	pc     uint64
	rw     regWindow
	base   uint64
	n      int
	stride uint64
	cur    uint64
	inited bool
}

func newSeqChaseKernel(pc uint64, rw regWindow, base uint64, n int, stride uint64) *seqChaseKernel {
	return &seqChaseKernel{pc: pc, rw: rw, base: base, n: n, stride: stride}
}

func (k *seqChaseKernel) emit(e *emitter) {
	ptr := k.rw.reg(0)
	if !k.inited {
		for i := 0; i < k.n; i++ {
			next := k.base + uint64((i+1)%k.n)*k.stride
			ipc := k.pc + 0x200 + uint64(i%16)*8
			e.alu(ipc, ptr, ptr, 0)
			e.store(ipc+4, ptr, 0, k.base+uint64(i)*k.stride, 8, next)
		}
		k.cur = k.base
		k.inited = true
	}
	acc, t1 := k.rw.reg(1), k.rw.reg(2)
	next := e.load(k.pc, ptr, ptr, k.cur, 8) // p = p->next, serialized
	// Per-node work: depends on the node, not on previous iterations,
	// so the pointer chain stays the critical path while the extra
	// instructions keep the in-flight iteration count shallow.
	e.alu(k.pc+4, t1, ptr, 0)
	e.aluLat(k.pc+8, t1, t1, ptr, 3)
	e.alu(k.pc+12, acc, acc, t1)
	e.branch(k.pc+16, acc, true, k.pc)
	k.cur = next
}

// indirectKernel computes B[A[i]]: the index-array load strides
// perfectly (SAP territory) and feeds the address of the data load.
// Predicting the index load's value — by probing the cache at its
// predicted address — un-serializes the pair, the headline case of the
// DLVP work the paper builds on (reference [3]).
type indirectKernel struct {
	pc     uint64
	rw     regWindow
	aBase  uint64
	bBase  uint64
	n      int
	i      int
	inited bool
	rng    xs
}

func newIndirectKernel(pc uint64, rw regWindow, region uint64, n int, seed uint64) *indirectKernel {
	return &indirectKernel{pc: pc, rw: rw, aBase: region, bBase: region + 4<<20, n: n, rng: xs(seed | 1)}
}

func (k *indirectKernel) emit(e *emitter) {
	idx, t, v, acc := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2), k.rw.reg(3)
	if !k.inited {
		// Fill the index array once with fixed pseudo-random indices.
		for j := 0; j < k.n; j++ {
			ipc := k.pc + 0x200 + uint64(j%16)*8
			e.alu(ipc, t, t, 0)
			e.store(ipc+4, t, 0, k.aBase+uint64(j)*8, 8, k.rng.next()%uint64(k.n))
		}
		k.inited = true
	}
	e.alu(k.pc, idx, idx, 0)
	tv := e.load(k.pc+4, t, idx, k.aBase+uint64(k.i)*8, 8) // t = A[i], strided
	e.load(k.pc+8, v, t, k.bBase+tv*8, 8)                  // v = B[t], depends on t
	e.alu(k.pc+12, acc, acc, v)
	e.branch(k.pc+16, idx, k.i < k.n-1, k.pc)
	if k.i++; k.i == k.n {
		k.i = 0
	}
}

// ringbufKernel is a producer/consumer ring buffer: each lap, a
// producer pass stores fresh values into every slot, then a consumer
// pass reads them back sequentially, branches on the value, and makes a
// value-dependent table access. The consumer's addresses stride
// perfectly (SAP territory) while its *values* are new every lap — so
// value predictors (LVP, CVP, E-Stride, E-VTAGE) can never learn them,
// but an address prediction's cache probe returns the freshly produced
// data and resolves the data-dependent branch early. This is the
// fresh-data-at-recurring-addresses pattern that separates address
// prediction from value prediction.
type ringbufKernel struct {
	pc    uint64
	rw    regWindow
	base  uint64
	table uint64
	n     int
	i     int
	phase int // 0 = produce, 1 = consume
	rng   xs
}

func newRingbufKernel(pc uint64, rw regWindow, region uint64, n int, seed uint64) *ringbufKernel {
	return &ringbufKernel{pc: pc, rw: rw, base: region, table: region + 1<<20, n: n, rng: xs(seed | 1)}
}

func (k *ringbufKernel) emit(e *emitter) {
	v, t, acc := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	if k.phase == 0 {
		// Producer: fresh value into slot i.
		e.alu(k.pc, v, v, acc)
		e.store(k.pc+4, v, 0, k.base+uint64(k.i)*8, 8, k.rng.next())
		e.branch(k.pc+8, v, k.i < k.n-1, k.pc)
		if k.i++; k.i == k.n {
			k.phase, k.i = 1, 0
		}
		return
	}
	// Consumer: sequential read, value-dependent branch and gather.
	cpc := k.pc + 0x100
	val := e.load(cpc, v, 0, k.base+uint64(k.i)*8, 8)
	e.branch(cpc+4, v, val&3 != 0, cpc+16) // ≈75% taken, data-dependent
	e.load(cpc+8, t, v, k.table+(val&63)*64, 8)
	e.alu(cpc+12, acc, acc, t)
	e.branch(cpc+16, acc, k.i < k.n-1, cpc)
	if k.i++; k.i == k.n {
		k.phase, k.i = 0, 0
	}
}

// flakyKernel produces short-lived strides: runs just long enough for
// SAP to gain confidence, then a new random base breaks them. It is the
// misprediction generator that motivates the accuracy monitors.
type flakyKernel struct {
	pc     uint64
	rw     regWindow
	region uint64
	runLen int
	rng    xs
	base   uint64
	i      int
	limit  int
}

func newFlakyKernel(pc uint64, rw regWindow, region uint64, runLen int, seed uint64) *flakyKernel {
	k := &flakyKernel{pc: pc, rw: rw, region: region, runLen: runLen, rng: xs(seed | 1)}
	k.newRun()
	return k
}

func (k *flakyKernel) newRun() {
	k.base = k.region + uint64(k.rng.intn(1024))*8
	k.limit = k.runLen + k.rng.intn(k.runLen)
	k.i = 0
}

func (k *flakyKernel) emit(e *emitter) {
	idx, val := k.rw.reg(0), k.rw.reg(1)
	addr := k.base + uint64(k.i)*8
	e.alu(k.pc, idx, idx, 0)
	e.load(k.pc+4, val, idx, addr, 8)
	e.alu(k.pc+8, idx, val, idx)
	e.branch(k.pc+12, idx, true, k.pc)
	if k.i++; k.i >= k.limit {
		k.newRun()
	}
}

// randomKernel issues loads at pseudo-random addresses across a large
// region: unpredictable addresses and values, plus data-dependent
// branches that stress the branch predictor. Models hash/graph access.
type randomKernel struct {
	pc     uint64
	rw     regWindow
	region uint64
	span   uint64
	rng    xs
}

func newRandomKernel(pc uint64, rw regWindow, region, span uint64, seed uint64) *randomKernel {
	return &randomKernel{pc: pc, rw: rw, region: region, span: span, rng: xs(seed | 1)}
}

func (k *randomKernel) emit(e *emitter) {
	idx, val, acc := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	addr := k.region + (k.rng.next()%k.span)&^uint64(7)
	e.alu(k.pc, idx, idx, 0)
	e.load(k.pc+4, val, idx, addr, 8)
	e.alu(k.pc+8, acc, acc, val)
	// Data-dependent but biased branch (≈75% taken): hard for TAGE,
	// not a guaranteed flush per iteration.
	e.branch(k.pc+12, val, (e.mem.Read(addr, 8)>>3)&3 != 0, k.pc)
}

// aluKernel is the non-memory filler: dependency chains of varying
// latency and a well-biased loop branch.
type aluKernel struct {
	pc uint64
	rw regWindow
	i  int
}

func newALUKernel(pc uint64, rw regWindow) *aluKernel {
	return &aluKernel{pc: pc, rw: rw}
}

func (k *aluKernel) emit(e *emitter) {
	a, b, c := k.rw.reg(0), k.rw.reg(1), k.rw.reg(2)
	e.alu(k.pc, a, a, b)
	e.alu(k.pc+4, b, a, c)
	if k.i%7 == 0 {
		e.aluLat(k.pc+8, c, b, a, 12) // occasional divide
	} else {
		e.aluLat(k.pc+8, c, b, a, 3) // multiply
	}
	e.alu(k.pc+12, a, c, b)
	e.branch(k.pc+16, a, k.i%16 != 15, k.pc)
	k.i++
}

// atomicKernel emits occasional atomic/exclusive accesses, which the VP
// engine must refuse to predict (Section III-A).
type atomicKernel struct {
	pc  uint64
	rw  regWindow
	loc uint64
	i   int
}

func newAtomicKernel(pc uint64, rw regWindow, loc uint64) *atomicKernel {
	return &atomicKernel{pc: pc, rw: rw, loc: loc}
}

func (k *atomicKernel) emit(e *emitter) {
	v, acc := k.rw.reg(0), k.rw.reg(1)
	e.loadFlagged(k.pc, v, 0, k.loc, 8, FlagExclusive)
	e.alu(k.pc+4, v, v, 0)
	e.store(k.pc+8, v, 0, k.loc, 8, uint64(k.i))
	e.alu(k.pc+12, acc, acc, v)
	e.branch(k.pc+16, acc, true, k.pc)
	k.i++
}

var _ = []kernel{
	(*constKernel)(nil), (*listing1Kernel)(nil), (*strideKernel)(nil),
	(*ctxValueKernel)(nil), (*callsiteKernel)(nil), (*storeUpdateKernel)(nil),
	(*chaseKernel)(nil), (*flakyKernel)(nil), (*randomKernel)(nil),
	(*aluKernel)(nil), (*atomicKernel)(nil),
}
