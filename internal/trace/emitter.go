package trace

import "repro/internal/mem"

// emitter buffers micro-ops produced by kernels and performs the
// architectural memory accesses that keep load values consistent with
// the backing image.
type emitter struct {
	mem *mem.Backing
	buf []Inst
}

func newEmitter(m *mem.Backing) *emitter {
	return &emitter{mem: m, buf: make([]Inst, 0, 256)}
}

// alu emits a register computation with latency 1.
func (e *emitter) alu(pc uint64, dst, s1, s2 Reg) {
	e.buf = append(e.buf, Inst{PC: pc, Op: OpALU, Dst: dst, Src1: s1, Src2: s2, Lat: 1})
}

// aluLat emits a register computation with an explicit latency
// (multiply ≈ 3, divide ≈ 12).
func (e *emitter) aluLat(pc uint64, dst, s1, s2 Reg, lat uint8) {
	e.buf = append(e.buf, Inst{PC: pc, Op: OpALU, Dst: dst, Src1: s1, Src2: s2, Lat: lat})
}

// load emits a load of size bytes at addr into dst, with addrReg as the
// address-generation dependence. The loaded value is read from the
// backing memory.
func (e *emitter) load(pc uint64, dst, addrReg Reg, addr uint64, size uint8) uint64 {
	v := e.mem.Read(addr, size)
	e.buf = append(e.buf, Inst{
		PC: pc, Op: OpLoad, Dst: dst, Src1: addrReg,
		Addr: addr, Size: size, Value: v, Lat: 1,
	})
	return v
}

// loadFlagged is load with memory-ordering flags (excluded from value
// prediction).
func (e *emitter) loadFlagged(pc uint64, dst, addrReg Reg, addr uint64, size uint8, f Flags) uint64 {
	v := e.mem.Read(addr, size)
	e.buf = append(e.buf, Inst{
		PC: pc, Op: OpLoad, Dst: dst, Src1: addrReg,
		Addr: addr, Size: size, Value: v, Lat: 1, Flags: f,
	})
	return v
}

// store emits a store of val (sourced from dataReg) and updates the
// backing memory.
func (e *emitter) store(pc uint64, dataReg, addrReg Reg, addr uint64, size uint8, val uint64) {
	e.mem.Write(addr, size, val)
	e.buf = append(e.buf, Inst{
		PC: pc, Op: OpStore, Src1: addrReg, Src2: dataReg,
		Addr: addr, Size: size, Value: val, Lat: 1,
	})
}

// branch emits a conditional branch. condReg is the register the
// direction depends on (creates the data→control dependence).
func (e *emitter) branch(pc uint64, condReg Reg, taken bool, target uint64) {
	e.buf = append(e.buf, Inst{
		PC: pc, Op: OpBranch, Src1: condReg, Taken: taken, Target: target, Lat: 1,
	})
}

// call emits a direct call.
func (e *emitter) call(pc, target uint64) {
	e.buf = append(e.buf, Inst{PC: pc, Op: OpCall, Taken: true, Target: target, Lat: 1})
}

// ret emits a return to target.
func (e *emitter) ret(pc, target uint64) {
	e.buf = append(e.buf, Inst{PC: pc, Op: OpRet, Taken: true, Target: target, Lat: 1})
}

// indirect emits an indirect branch to target, dependent on targetReg.
func (e *emitter) indirect(pc uint64, targetReg Reg, target uint64) {
	e.buf = append(e.buf, Inst{PC: pc, Op: OpIndirect, Src1: targetReg, Taken: true, Target: target, Lat: 1})
}
