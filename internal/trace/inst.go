// Package trace defines the instruction stream format consumed by the
// pipeline model and the synthetic workload generators that stand in
// for the paper's 85 benchmark simpoints (SPEC2K/2K6, EEMBC, browser
// and JavaScript workloads — see DESIGN.md §2 for the substitution
// argument).
//
// A workload is a deterministic stream of micro-ops with explicit
// register dependences, load/store addresses and values, and branch
// outcomes. Loads and stores are architecturally consistent with a
// backing memory image: generators write program data through it and
// read load values from it, so address-predicting value predictors that
// probe the (simulated) data cache observe the same values the loads
// return.
package trace

import "repro/internal/mem"

// Op is the micro-op kind.
type Op uint8

// Micro-op kinds.
const (
	OpALU    Op = iota // register-to-register computation
	OpLoad             // memory read
	OpStore            // memory write
	OpBranch           // conditional direct branch
	OpJump             // unconditional direct branch
	OpCall             // direct call (pushes return address)
	OpRet              // return (pops return address)
	OpIndirect
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpJump:
		return "jump"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	case OpIndirect:
		return "indirect"
	}
	return "op?"
}

// Flags mark memory-ordering properties that exclude an access from
// value/address prediction (Section III-A: ordering instructions,
// atomic and exclusive accesses are never predicted).
type Flags uint8

// Flag bits.
const (
	FlagAtomic Flags = 1 << iota
	FlagExclusive
	FlagOrdered
)

// NoPredict reports whether the flags exclude prediction.
func (f Flags) NoPredict() bool { return f != 0 }

// Reg names an architectural register. Register 0 is the zero/none
// register: it is always ready and never creates a dependence.
type Reg uint8

// NumRegs is the architectural register count (ARM-like: 31 general
// registers plus the zero register).
const NumRegs = 32

// Inst is one micro-op of the trace, carrying both the architectural
// outcome (addresses, values, branch directions — the trace is the
// correct execution) and the dependence information the timing model
// needs.
type Inst struct {
	PC   uint64
	Op   Op
	Dst  Reg // 0 = none
	Src1 Reg // 0 = none
	Src2 Reg // 0 = none

	// Addr/Size/Value describe memory operations: for loads, Value is
	// the (architecturally correct) loaded value; for stores, the value
	// written.
	Addr  uint64
	Size  uint8
	Value uint64

	// Taken and Target describe control flow. Target is meaningful for
	// taken branches, jumps, calls, indirect branches and returns.
	Taken  bool
	Target uint64

	// Lat is the intrinsic execute latency in cycles for non-memory
	// ops (1 for simple ALU, more for multiply/divide).
	Lat uint8

	Flags Flags
}

// IsBranch reports whether the op participates in branch prediction.
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case OpBranch, OpJump, OpCall, OpRet, OpIndirect:
		return true
	}
	return false
}

// Generator produces a deterministic instruction stream.
type Generator interface {
	// Next fills inst with the next micro-op, returning false at end of
	// stream.
	Next(inst *Inst) bool

	// Mem exposes the architectural memory image the stream's loads and
	// stores refer to.
	Mem() *mem.Backing
}
