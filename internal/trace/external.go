package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// External workloads are uploaded traces, not synthetic recipes: a
// client converts a CVP-1-style trace file (internal/tracein) into a
// recorded stream and registers it here under the content-addressed
// name "ext:<hash>". From that point the rest of the system treats it
// like any workload: spec.Validate resolves it through ByName, the
// artifact store records and ships it, and the warehouse keys results
// by spec hashes that embed the name — so the same content hash means
// the same results everywhere.
//
// The registry is process-global because workload resolution is
// (ByName has no receiver): a daemon registers uploads at receipt and
// re-registers persisted ones at startup, sweep workers register
// pre-shipped artifacts as they arrive (ArtifactStore.Put), and tests
// clean up with UnregisterExternal.

// ExternalPrefix marks external workload names: "ext:" followed by the
// content hash of the uploaded trace file.
const ExternalPrefix = "ext:"

// ProfileExternal is the Workload.Profile of registered external
// traces. Unlike synthetic profiles it names no kernel recipe: the
// stream is a recording, so salted (SMT) variants replay the same
// instructions.
const ProfileExternal = "external"

// maxExternalNameLen keeps external names within the artifact header's
// name bound (maxArtifactNameLen), with room for a "#<salt>" suffix.
const maxExternalNameLen = 128

// extEntry is one registered external trace: the longest recording seen
// so far plus whether it is known to be the complete trace. A complete
// registration (an upload of the whole file) is authoritative; an
// incomplete one (a budget-bounded artifact shipped by a coordinator)
// can be superseded by a longer or complete recording.
type extEntry struct {
	rep      *Replay
	complete bool
}

var (
	extMu  sync.RWMutex
	extReg = make(map[string]*extEntry)
)

// IsExternalName reports whether a workload name refers to an uploaded
// trace rather than a synthetic recipe.
func IsExternalName(name string) bool {
	return strings.HasPrefix(name, ExternalPrefix)
}

// RegisterExternal registers (or upgrades) the recording of an external
// trace under name. complete marks the recording as the whole trace;
// incomplete registrations — coordinator-shipped artifacts bounded by a
// sweep's instruction budget — are kept only while nothing longer or
// complete is known. Reports whether the registration took effect.
func RegisterExternal(name string, rep *Replay, complete bool) (bool, error) {
	if !IsExternalName(name) || len(name) <= len(ExternalPrefix) {
		return false, fmt.Errorf("trace: external name %q must be %q followed by a content hash", name, ExternalPrefix)
	}
	if len(name) > maxExternalNameLen {
		return false, fmt.Errorf("trace: external name %q exceeds %d bytes", name, maxExternalNameLen)
	}
	if strings.ContainsRune(name, '#') {
		return false, fmt.Errorf("trace: external name %q must not contain '#' (reserved for stream salts)", name)
	}
	if rep == nil || rep.Len() == 0 {
		return false, fmt.Errorf("trace: external trace %q is empty", name)
	}
	extMu.Lock()
	defer extMu.Unlock()
	if old, ok := extReg[name]; ok {
		if old.complete || (!complete && rep.Len() <= old.rep.Len()) {
			return false, nil // the incumbent knows at least as much
		}
	}
	extReg[name] = &extEntry{rep: rep, complete: complete}
	return true, nil
}

// UnregisterExternal removes a registration (tests and administrative
// cleanup).
func UnregisterExternal(name string) {
	extMu.Lock()
	delete(extReg, name)
	extMu.Unlock()
}

// ExternalNames returns the registered external workload names, sorted.
func ExternalNames() []string {
	extMu.RLock()
	names := make([]string, 0, len(extReg))
	for n := range extReg {
		names = append(names, n)
	}
	extMu.RUnlock()
	sort.Strings(names)
	return names
}

// ExternalLen returns the recorded instruction count of a registered
// external trace and whether the recording is known complete.
func ExternalLen(name string) (n uint64, complete, ok bool) {
	extMu.RLock()
	e, ok := extReg[name]
	extMu.RUnlock()
	if !ok {
		return 0, false, false
	}
	return uint64(e.rep.Len()), e.complete, true
}

// externalByName resolves an external name to a Workload whose Build
// returns a bounded cursor over the registered recording. The recording
// is captured at resolution time: a Workload handed out before an
// upgrade keeps replaying the stream it resolved.
func externalByName(name string) (Workload, bool) {
	extMu.RLock()
	e, ok := extReg[name]
	extMu.RUnlock()
	if !ok {
		return Workload{}, false
	}
	rep := e.rep
	return Workload{
		Name:    name,
		Profile: ProfileExternal,
		Build:   func(n uint64) Generator { return rep.CursorN(n) },
	}, true
}
