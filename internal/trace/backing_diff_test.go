package trace

import (
	"testing"

	"repro/internal/mem"
)

// wordRef is a minimal copy of the original map-backed memory image,
// the reference the flat-page mem.Backing is differenced against. Only
// the pieces the differential needs are modeled (word store + fill).
type wordRef struct {
	words map[uint64]uint64
	seed  uint64
}

func newWordRef(seed uint64) *wordRef {
	return &wordRef{words: make(map[uint64]uint64), seed: seed}
}

func (b *wordRef) fill(wordIdx uint64) uint64 {
	z := wordIdx*0x9E3779B97F4A7C15 + b.seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (b *wordRef) word(wordIdx uint64) uint64 {
	if w, ok := b.words[wordIdx]; ok {
		return w
	}
	return b.fill(wordIdx)
}

func (b *wordRef) Read(addr uint64, size uint8) uint64 {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	v := b.word(w0) >> off
	if off+nbits > 64 {
		v |= b.word(w0+1) << (64 - off)
	}
	if nbits < 64 {
		v &= (uint64(1) << nbits) - 1
	}
	return v
}

func (b *wordRef) Write(addr uint64, size uint8, val uint64) {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	if nbits < 64 {
		val &= (uint64(1) << nbits) - 1
	}
	n0 := nbits
	if n0 > 64-off {
		n0 = 64 - off
	}
	mask0 := ^uint64(0)
	if n0 < 64 {
		mask0 = (uint64(1) << n0) - 1
	}
	b.words[w0] = b.word(w0)&^(mask0<<off) | (val&mask0)<<off
	if rem := nbits - n0; rem > 0 {
		maskR := (uint64(1) << rem) - 1
		b.words[w0+1] = b.word(w0+1)&^maskR | (val>>n0)&maskR
	}
}

// TestBackingDifferentialAllWorkloads replays every workload's memory
// traffic through a flat-page Backing and the map reference in
// lockstep, asserting every load observes identical bytes and every
// store leaves identical state. This pins the flat-page implementation
// to the original map semantics across all 85 workloads' real access
// patterns (kernel strides, pointer chases, region mixes) rather than
// synthetic addresses only.
func TestBackingDifferentialAllWorkloads(t *testing.T) {
	const insts = 20_000
	pool := Workloads()
	if len(pool) != 85 {
		t.Fatalf("workload pool has %d entries, want 85", len(pool))
	}
	for _, w := range pool {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			gen := w.Build(insts)
			seed := FillSeed(w.Name)
			flat := mem.NewBacking(seed)
			ref := newWordRef(seed)
			var in Inst
			n := 0
			for gen.Next(&in) {
				switch in.Op {
				case OpStore:
					flat.Write(in.Addr, in.Size, in.Value)
					ref.Write(in.Addr, in.Size, in.Value)
				case OpLoad:
					got := flat.Read(in.Addr, in.Size)
					want := ref.Read(in.Addr, in.Size)
					if got != want {
						t.Fatalf("inst %d: load %#x size %d: flat %#x, ref %#x",
							n, in.Addr, in.Size, got, want)
					}
				}
				n++
			}
			// Footprints (distinct written words) must agree too.
			if got, want := flat.Footprint(), len(ref.words); got != want {
				t.Fatalf("footprint %d, ref %d", got, want)
			}
		})
	}
}
