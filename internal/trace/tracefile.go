package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// This file implements a compact binary trace format so instruction
// streams can be recorded once and replayed many times (or exchanged
// with other tools). The format is versioned and self-describing:
//
//	header:  magic "LVPT" | u16 version | u64 seed | u64 count
//	records: one per instruction, varint-packed fields gated by a
//	         presence mask
//
// Loads and stores carry their architectural address/size/value, so a
// replayed trace reproduces runs bit-for-bit: the reader rebuilds the
// memory image by replaying stores over a backing store seeded with the
// recorded fill seed.
//
// Version 2 extends the header with an explicit start-of-stream image:
//
//	header:  magic "LVPT" | uvarint version (2) | uvarint seed |
//	         uvarint nWords | nWords × (uvarint wordIdx delta, uvarint value)
//
// Synthetic workloads never need it — their generators begin with an
// empty footprint (kernels write memory only while emitting), so the
// seed alone reconstructs the Run-start image and the writer keeps
// emitting version 1, byte-identical to every artifact recorded before
// version 2 existed. External (uploaded) traces do need it: their
// pre-image holds the load values the converter reconstructed, which no
// fill seed can regenerate. Word indices are delta-encoded in ascending
// order, so dense images cost ~2 bytes of index per word before gzip.

const (
	traceMagic        = "LVPT"
	traceVersion      = 1
	traceVersionImage = 2

	// maxImageWords and maxImagePages bound a version-2 pre-image (128
	// MiB of words, 1 GiB of materialized pages): far beyond any
	// admissible trace, small enough that a hostile header cannot
	// balloon memory through page materialization.
	maxImageWords = 1 << 24
	maxImagePages = 1 << 14
)

// field-presence mask bits.
const (
	fDst uint8 = 1 << iota
	fSrc1
	fSrc2
	fMem
	fBranch
	fLat
	fFlags
)

// WriteTrace records every instruction from gen to w. It returns the
// number of instructions written. The recorded header carries the
// generator's memory fill seed (gen.Mem().Seed()) so replay can
// reconstruct load values for never-written locations.
//
// When the generator's memory image already holds written words at the
// start of the stream — an external trace's reconstructed pre-image —
// the writer emits a version-2 trace carrying the image explicitly (no
// fill seed can describe written words). Generators starting from an
// empty footprint, which is every live synthetic generator, produce
// version 1, byte-identical to before version 2 existed.
func WriteTrace(w io.Writer, gen Generator) (uint64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	img := gen.Mem()
	if img.Footprint() > 0 {
		if err := writeU(traceVersionImage); err != nil {
			return 0, err
		}
		if err := writeU(img.Seed()); err != nil {
			return 0, err
		}
		if err := writeU(uint64(img.Footprint())); err != nil {
			return 0, err
		}
		var werr error
		prev := uint64(0)
		img.WrittenWords(func(wordIdx, val uint64) {
			if werr != nil {
				return
			}
			if werr = writeU(wordIdx - prev); werr == nil {
				werr = writeU(val)
			}
			prev = wordIdx
		})
		if werr != nil {
			return 0, werr
		}
	} else {
		if err := writeU(traceVersion); err != nil {
			return 0, err
		}
		if err := writeU(img.Seed()); err != nil {
			return 0, err
		}
	}

	// Instruction count is unknown up front with a streaming writer;
	// emit records and a terminator instead of a count.
	var count uint64
	var in Inst
	for gen.Next(&in) {
		if err := writeRecord(bw, writeU, &in); err != nil {
			return count, err
		}
		count++
	}
	// Terminator: a zero mask with opcode 0xFF.
	if err := bw.WriteByte(0xFF); err != nil {
		return count, err
	}
	return count, bw.Flush()
}

func writeRecord(bw *bufio.Writer, writeU func(uint64) error, in *Inst) error {
	if in.Op == Op(0xFF) {
		return errors.New("trace: reserved opcode")
	}
	var mask uint8
	if in.Dst != 0 {
		mask |= fDst
	}
	if in.Src1 != 0 {
		mask |= fSrc1
	}
	if in.Src2 != 0 {
		mask |= fSrc2
	}
	if in.Op == OpLoad || in.Op == OpStore {
		mask |= fMem
	}
	if in.IsBranch() {
		mask |= fBranch
	}
	if in.Lat > 1 {
		mask |= fLat
	}
	if in.Flags != 0 {
		mask |= fFlags
	}
	if err := bw.WriteByte(byte(in.Op)); err != nil {
		return err
	}
	if err := bw.WriteByte(mask); err != nil {
		return err
	}
	if err := writeU(in.PC); err != nil {
		return err
	}
	if mask&fDst != 0 {
		if err := bw.WriteByte(byte(in.Dst)); err != nil {
			return err
		}
	}
	if mask&fSrc1 != 0 {
		if err := bw.WriteByte(byte(in.Src1)); err != nil {
			return err
		}
	}
	if mask&fSrc2 != 0 {
		if err := bw.WriteByte(byte(in.Src2)); err != nil {
			return err
		}
	}
	if mask&fMem != 0 {
		if err := writeU(in.Addr); err != nil {
			return err
		}
		if err := bw.WriteByte(in.Size); err != nil {
			return err
		}
		if err := writeU(in.Value); err != nil {
			return err
		}
	}
	if mask&fBranch != 0 {
		taken := byte(0)
		if in.Taken {
			taken = 1
		}
		if err := bw.WriteByte(taken); err != nil {
			return err
		}
		if err := writeU(in.Target); err != nil {
			return err
		}
	}
	if mask&fLat != 0 {
		if err := bw.WriteByte(in.Lat); err != nil {
			return err
		}
	}
	if mask&fFlags != 0 {
		if err := bw.WriteByte(byte(in.Flags)); err != nil {
			return err
		}
	}
	return nil
}

// TraceReader replays a recorded trace as a Generator.
type TraceReader struct {
	br     *bufio.Reader
	memory *mem.Backing
	err    error
	done   bool
}

// NewTraceReader parses the header and returns a Generator over the
// recorded stream. The returned reader's Mem starts as the recorded
// initial image (fill seed only); stores replay through it as the
// stream is consumed, exactly as live generators behave.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != traceVersion && version != traceVersionImage {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading seed: %w", err)
	}
	memory := mem.NewBacking(seed)
	if version == traceVersionImage {
		nWords, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading image size: %w", err)
		}
		if nWords > maxImageWords {
			return nil, fmt.Errorf("trace: pre-image of %d words exceeds limit %d", nWords, maxImageWords)
		}
		wordIdx := uint64(0)
		for i := uint64(0); i < nWords; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: reading image word index: %w", err)
			}
			val, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: reading image word value: %w", err)
			}
			wordIdx += delta
			memory.Write(wordIdx<<3, 8, val)
			if memory.PageCount() > maxImagePages {
				return nil, fmt.Errorf("trace: pre-image materializes more than %d pages", maxImagePages)
			}
		}
	}
	return &TraceReader{br: br, memory: memory}, nil
}

// Mem implements Generator.
func (t *TraceReader) Mem() *mem.Backing { return t.memory }

// Err returns the first decode error encountered, if any (Next returns
// false both at end-of-trace and on error).
func (t *TraceReader) Err() error { return t.err }

// Next implements Generator.
func (t *TraceReader) Next(in *Inst) bool {
	if t.done || t.err != nil {
		return false
	}
	op, err := t.br.ReadByte()
	if err != nil {
		t.fail(err)
		return false
	}
	if op == 0xFF {
		t.done = true
		return false
	}
	mask, err := t.br.ReadByte()
	if err != nil {
		t.fail(err)
		return false
	}
	*in = Inst{Op: Op(op), Lat: 1}
	if in.PC, err = binary.ReadUvarint(t.br); err != nil {
		t.fail(err)
		return false
	}
	readReg := func(dst *Reg) bool {
		b, e := t.br.ReadByte()
		if e != nil {
			t.fail(e)
			return false
		}
		*dst = Reg(b)
		return true
	}
	if mask&fDst != 0 && !readReg(&in.Dst) {
		return false
	}
	if mask&fSrc1 != 0 && !readReg(&in.Src1) {
		return false
	}
	if mask&fSrc2 != 0 && !readReg(&in.Src2) {
		return false
	}
	if mask&fMem != 0 {
		if in.Addr, err = binary.ReadUvarint(t.br); err != nil {
			t.fail(err)
			return false
		}
		if in.Size, err = t.br.ReadByte(); err != nil {
			t.fail(err)
			return false
		}
		if in.Value, err = binary.ReadUvarint(t.br); err != nil {
			t.fail(err)
			return false
		}
	}
	if mask&fBranch != 0 {
		b, e := t.br.ReadByte()
		if e != nil {
			t.fail(e)
			return false
		}
		in.Taken = b != 0
		if in.Target, err = binary.ReadUvarint(t.br); err != nil {
			t.fail(err)
			return false
		}
	}
	if mask&fLat != 0 {
		if in.Lat, err = t.br.ReadByte(); err != nil {
			t.fail(err)
			return false
		}
	}
	if mask&fFlags != 0 {
		b, e := t.br.ReadByte()
		if e != nil {
			t.fail(e)
			return false
		}
		in.Flags = Flags(b)
	}
	// Keep the architectural memory image in sync, as live generators
	// do: the reader's Mem reflects all stores replayed so far.
	if in.Op == OpStore {
		t.memory.Write(in.Addr, in.Size, in.Value)
	}
	return true
}

func (t *TraceReader) fail(err error) {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	t.err = fmt.Errorf("trace: decode: %w", err)
}

// FillSeed returns the fill seed a stream's backing memory uses, for
// recording its trace. The argument is a stream name: salted streams
// ("name#salt") resolve to the salted construction seed, so a replayed
// artifact reconstructs the exact memory image its live generator
// presented. For bare workload names this is fnv1a(name), unchanged
// from before salted streams existed — old artifacts stay valid.
func FillSeed(stream string) uint64 {
	name, salt := SplitStreamName(stream)
	return streamSeed(name, salt)
}
