package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Stream naming. A multi-context (SMT) simulation runs one instruction
// stream per hardware context; when several contexts run the same
// workload they must not be lockstep clones, so context k runs the
// workload's salt-k stream — the same kernel-mix recipe, independently
// seeded. A stream is addressed by "<workload>" (salt 0, the canonical
// single-context stream) or "<workload>#<salt>". Stream names flow
// through the whole artifact machinery: ArtifactKey hashes them, the
// artifact store generates them on demand, and coordinators ship them
// to workers like any other recorded trace.

// StreamName returns the stream name of workload name for hardware
// context ctx: the bare workload name for context 0, "name#ctx" beyond.
func StreamName(name string, ctx int) string {
	if ctx <= 0 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, ctx)
}

// SplitStreamName parses a stream name into its workload name and salt.
// Names without a "#<salt>" suffix are salt 0. A suffix only counts as
// a salt when it leaves a non-empty workload part and is the canonical
// decimal form StreamName produces; anything else — "#3", "name#",
// "name#-1", "name#x", "name#+3", "name#03" — is treated as a literal
// (and thus unknown) workload name rather than round-tripping into a
// salted stream of a different name. Canonical-only parsing matters for
// content addressing: a non-canonical spelling of the same salt must
// not mint a second artifact address for one stream.
func SplitStreamName(stream string) (name string, salt int) {
	i := strings.LastIndexByte(stream, '#')
	if i <= 0 {
		return stream, 0
	}
	suffix := stream[i+1:]
	n, err := strconv.Atoi(suffix)
	if err != nil || n < 0 || strconv.Itoa(n) != suffix {
		return stream, 0
	}
	return stream[:i], n
}

// BuildStream constructs a generator for a stream name, resolving the
// "<workload>#<salt>" form to the named workload's independently-seeded
// salt stream. Reports false when the workload is unknown.
//
// External (uploaded) traces are a single recorded stream: there is no
// recipe to re-seed, so every salt of an external name replays the same
// recording. SMT mixes over an external trace therefore run lockstep
// copies — see DESIGN.md §15 for the caveat.
func BuildStream(stream string, n uint64) (Generator, bool) {
	name, salt := SplitStreamName(stream)
	w, ok := ByName(name)
	if !ok {
		return nil, false
	}
	if salt == 0 || w.Profile == ProfileExternal {
		return w.Build(n), true
	}
	return buildProfile(w.Name, w.Profile, salt, n), true
}
