package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Stream naming. A multi-context (SMT) simulation runs one instruction
// stream per hardware context; when several contexts run the same
// workload they must not be lockstep clones, so context k runs the
// workload's salt-k stream — the same kernel-mix recipe, independently
// seeded. A stream is addressed by "<workload>" (salt 0, the canonical
// single-context stream) or "<workload>#<salt>". Stream names flow
// through the whole artifact machinery: ArtifactKey hashes them, the
// artifact store generates them on demand, and coordinators ship them
// to workers like any other recorded trace.

// StreamName returns the stream name of workload name for hardware
// context ctx: the bare workload name for context 0, "name#ctx" beyond.
func StreamName(name string, ctx int) string {
	if ctx <= 0 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, ctx)
}

// SplitStreamName parses a stream name into its workload name and salt.
// Names without a "#<salt>" suffix are salt 0.
func SplitStreamName(stream string) (name string, salt int) {
	i := strings.LastIndexByte(stream, '#')
	if i < 0 {
		return stream, 0
	}
	n, err := strconv.Atoi(stream[i+1:])
	if err != nil || n < 0 {
		return stream, 0
	}
	return stream[:i], n
}

// BuildStream constructs a generator for a stream name, resolving the
// "<workload>#<salt>" form to the named workload's independently-seeded
// salt stream. Reports false when the workload is unknown.
func BuildStream(stream string, n uint64) (Generator, bool) {
	name, salt := SplitStreamName(stream)
	w, ok := ByName(name)
	if !ok {
		return nil, false
	}
	if salt == 0 {
		return w.Build(n), true
	}
	return buildProfile(w.Name, w.Profile, salt, n), true
}
