package trace

import "testing"

func TestReplayMatchesLiveStream(t *testing.T) {
	w, _ := ByName("gcc2k")
	const n = 5000
	rep := Record(w.Build(n), 0)
	if rep.Len() != n {
		t.Fatalf("recorded %d instructions, want %d", rep.Len(), n)
	}

	live := w.Build(n)
	var a, b Inst
	for i := 0; ; i++ {
		la, lb := live.Next(&a), rep.Next(&b)
		if la != lb {
			t.Fatalf("stream length mismatch at %d: live=%v replay=%v", i, la, lb)
		}
		if !la {
			break
		}
		if a != b {
			t.Fatalf("instruction %d differs:\n live: %+v\nreplay: %+v", i, a, b)
		}
	}

	// Rewind restarts the identical stream.
	rep.Rewind()
	live2 := w.Build(n)
	for i := 0; live2.Next(&a); i++ {
		if !rep.Next(&b) || a != b {
			t.Fatalf("rewound stream diverged at %d", i)
		}
	}
}

// TestReplayMemIsRunStartImage pins the snapshot semantics: Mem must
// equal a fresh generator's image before any instruction is consumed —
// that is what a pipeline copies at Run start — even though recording
// drained the live generator (whose image advances with its stores).
func TestReplayMemIsRunStartImage(t *testing.T) {
	w, _ := ByName("mcf")
	rep := Record(w.Build(2000), 0)
	fresh := w.Build(2000)
	for _, addr := range []uint64{0, 64, 4096, 1 << 20} {
		if got, want := rep.Mem().Read(addr, 8), fresh.Mem().Read(addr, 8); got != want {
			t.Errorf("Mem[%#x] = %#x, want fresh-generator image %#x", addr, got, want)
		}
	}
}

func TestReplayMaxTruncates(t *testing.T) {
	w, _ := ByName("gcc2k")
	if rep := Record(w.Build(5000), 100); rep.Len() != 100 {
		t.Fatalf("max=100 recorded %d instructions", rep.Len())
	}
}
