package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	w, _ := ByName("gcc2k")
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, w.Build(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 20_000 {
		t.Fatalf("wrote %d instructions", n)
	}

	rd, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := w.Build(20_000)
	var a, b Inst
	i := 0
	for orig.Next(&a) {
		if !rd.Next(&b) {
			t.Fatalf("replay ended early at %d: %v", i, rd.Err())
		}
		if a != b {
			t.Fatalf("instruction %d differs:\n  orig   %+v\n  replay %+v", i, a, b)
		}
		i++
	}
	if rd.Next(&b) {
		t.Error("replay produced extra instructions")
	}
	if rd.Err() != nil {
		t.Errorf("reader error: %v", rd.Err())
	}
}

func TestTraceReplayMemoryImage(t *testing.T) {
	// The reader's memory image must track stores so that load values
	// remain architecturally consistent (the same invariant live
	// generators provide).
	w, _ := ByName("v8")
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, w.Build(20_000)); err != nil {
		t.Fatal(err)
	}
	rd, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Inst
	for rd.Next(&in) {
		if in.Op == OpLoad {
			if got := rd.Mem().Read(in.Addr, in.Size); got != in.Value {
				t.Fatalf("replayed memory image inconsistent at %#x: %#x vs %#x", in.Addr, got, in.Value)
			}
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	w, _ := ByName("linpack")
	var buf bytes.Buffer
	n, _ := WriteTrace(&buf, w.Build(20_000))
	perInst := float64(buf.Len()) / float64(n)
	if perInst > 16 {
		t.Errorf("trace uses %.1f bytes/instruction, want <= 16", perInst)
	}
}

func TestTraceBadInput(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("NOPE")); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := NewTraceReader(strings.NewReader("LV")); err == nil {
		t.Error("accepted truncated magic")
	}
	// Truncated mid-stream: Next must stop with an error, not hang or
	// panic.
	w, _ := ByName("gzip")
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, w.Build(1000)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	rd, err := NewTraceReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var in Inst
	for rd.Next(&in) {
	}
	if rd.Err() == nil {
		t.Error("truncated trace decoded without error")
	}
}

func TestTraceFlaggedInstructionsSurvive(t *testing.T) {
	w, _ := ByName("perlbench")
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, w.Build(60_000)); err != nil {
		t.Fatal(err)
	}
	rd, _ := NewTraceReader(&buf)
	var in Inst
	flagged := 0
	for rd.Next(&in) {
		if in.Flags.NoPredict() {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("atomic/exclusive flags lost in round trip")
	}
}
