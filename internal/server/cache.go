package server

import (
	"container/list"
	"sync"
)

// ResultCache is a fixed-capacity LRU of completed RunResults keyed by
// the canonical spec hash. Safe for concurrent use. It backs the
// per-daemon result cache and the cluster coordinator's shared cache:
// because the key is the spec's canonical hash, every node that caches
// a result for a key holds an interchangeable value.
type ResultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res RunResult
}

// NewResultCache returns an empty cache holding at most capacity
// entries (minimum 1).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &ResultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *ResultCache) Get(key string) (RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return RunResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting the least recently used entry when
// over capacity.
func (c *ResultCache) Put(key string, res RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
