package server

import (
	"io"
	"net/http"

	"repro/internal/trace"
	"repro/internal/tracein"
)

// WorkloadUpload is the response of POST /v1/workloads: the identity an
// uploaded trace runs under, plus the converter's reconstruction report
// so the client can judge substitution fidelity before spending sweep
// budget on it.
type WorkloadUpload struct {
	// Workload is the content-addressed name ("ext:<hash>") specs
	// reference to simulate this trace.
	Workload string `json:"workload"`
	// Insts is the trace's instruction count — the maximum useful
	// per-context budget for specs over this workload.
	Insts uint64 `json:"insts"`
	// Artifact is the content address of the persisted recording in the
	// trace artifact store (GET /v1/traces/{hash} exports it).
	Artifact string `json:"artifact"`
	// BackfilledBytes counts memory-image bytes reconstructed from load
	// values rather than the trace's fill seed.
	BackfilledBytes uint64 `json:"backfilled_bytes"`
	// InconsistentLoads counts loads whose value contradicts the
	// trace's own earlier accesses (see internal/tracein); nonzero
	// means the source trace is internally inconsistent.
	InconsistentLoads uint64 `json:"inconsistent_loads,omitempty"`
	// DroppedSrcRegs counts source registers beyond the micro-op's two
	// source slots.
	DroppedSrcRegs uint64 `json:"dropped_src_regs,omitempty"`
}

// handleUploadWorkload implements POST /v1/workloads: accept a CVP-1
// style trace file (internal/tracein container), convert it into a
// recorded workload stream, register it under its content-addressed
// "ext:<hash>" name, and persist it in the trace artifact store so it
// survives restarts and can be pre-shipped to sweep workers. The body
// is the raw trace file; the response carries the workload name to put
// in specs.
func (s *Server) handleUploadWorkload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading trace body: "+err.Error())
		return
	}
	// The conversion bound is the artifact store's resident budget: a
	// trace too big to record is also too big to replay through sweeps,
	// so reject it before materializing anything.
	name, rep, info, err := tracein.ConvertBytes(data, trace.DefaultArtifactBudget)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "converting trace: "+err.Error())
		return
	}
	if _, err := trace.RegisterExternal(name, rep, true); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := s.traces.PutRecording(name, rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "persisting trace: "+err.Error())
		return
	}
	tn := s.requestTenant(r)
	s.mUploads.Inc()
	s.log.InfoContext(r.Context(), "external trace uploaded",
		"workload", name, "insts", info.Insts, "artifact", key,
		"tenant", tn.Name, "backfilled_bytes", info.BackfilledBytes,
		"inconsistent_loads", info.InconsistentLoads)
	writeJSON(w, http.StatusCreated, WorkloadUpload{
		Workload:          name,
		Insts:             info.Insts,
		Artifact:          key,
		BackfilledBytes:   info.BackfilledBytes,
		InconsistentLoads: info.InconsistentLoads,
		DroppedSrcRegs:    info.DroppedSrcRegs,
	})
}
