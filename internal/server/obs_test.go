package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/tsdb"
	"repro/internal/store"
)

// alertsResponse mirrors the GET /v1/alerts body.
type alertsResponse struct {
	Enabled bool               `json:"enabled"`
	Firing  int                `json:"firing"`
	Alerts  []tsdb.AlertStatus `json:"alerts"`
}

func getAlerts(t *testing.T, ts *httptest.Server) alertsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar alertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// TestAlertLifecycleAndFlightRecord drives the full SLO loop with an
// explicit clock: a job failure breaches a rate() rule, the alert
// fires on /v1/alerts and in lvpd_alerts_firing, then resolves once
// the failure rate decays — and the failed job's black box survives a
// restart through the WAL-backed flight store.
func TestAlertLifecycleAndFlightRecord(t *testing.T) {
	dir := t.TempDir()
	rules, err := tsdb.ParseRules([]byte(`{
		"interval_seconds": 3600,
		"rules": [{
			"name": "job-failures",
			"expr": "rate(lvpd_jobs_total{state=\"failed\"}[1m]) > 0",
			"severity": "warn",
			"summary": "jobs are failing"
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:           2,
		MaxInsts:          -1,
		DataDir:           dir,
		Alerts:            rules,
		ObsScrapeInterval: time.Hour, // only explicit ScrapeObs passes
		Logger:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts:      20_000,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	t0 := time.Now()
	s.ScrapeObs(t0) // baseline: failed = 0

	// Induce the breach: a 1ms deadline on a 50M-instruction run fails
	// with deadline exceeded.
	resp, st := submit(t, ts, JobRequest{
		Workload: "gcc2k", Predictor: "composite", Insts: 50_000_000, TimeoutMS: 1,
	})
	resp.Body.Close()
	if st.ID == "" {
		t.Fatalf("submit returned no id (status %d)", resp.StatusCode)
	}
	failed := waitState(t, ts, st.ID, 30*time.Second, StateFailed)
	if failed.Error == "" {
		t.Fatalf("failed job carries no error: %+v", failed)
	}

	// The failure enters the store; the rate over the last minute
	// breaches and the rule fires immediately (for_seconds 0).
	t1 := t0.Add(5 * time.Second)
	s.ScrapeObs(t1)
	s.EvaluateAlerts(t1)
	ar := getAlerts(t, ts)
	if !ar.Enabled || ar.Firing != 1 {
		t.Fatalf("alerts after breach = %+v, want enabled with 1 firing", ar)
	}
	if len(ar.Alerts) != 1 || ar.Alerts[0].State != tsdb.AlertFiring {
		t.Fatalf("rule state = %+v, want firing", ar.Alerts)
	}

	// The firing count feeds back into the registry and therefore into
	// the next scrape.
	t2 := t1.Add(5 * time.Second)
	s.ScrapeObs(t2)
	e, err := tsdb.ParseExpr("lvpd_alerts_firing")
	if err != nil {
		t.Fatal(err)
	}
	rs := s.TSDB().Eval(e, t2)
	if len(rs) != 1 || rs[0].Value != 1 {
		t.Fatalf("lvpd_alerts_firing = %+v, want 1", rs)
	}

	// Two quiet scrapes a couple of minutes later: the 1m rate window
	// no longer contains the increase, the rule resolves.
	t3 := t2.Add(2 * time.Minute)
	s.ScrapeObs(t3)
	t4 := t3.Add(5 * time.Second)
	s.ScrapeObs(t4)
	s.EvaluateAlerts(t4)
	ar = getAlerts(t, ts)
	if ar.Firing != 0 || len(ar.Alerts) != 1 || ar.Alerts[0].State != tsdb.AlertResolved {
		t.Fatalf("alerts after decay = %+v, want resolved with 0 firing", ar)
	}

	// The failed job's flight record is retrievable now...
	var rec store.FlightRecord
	getFlight(t, ts, st.ID, &rec)
	if rec.JobID != st.ID || rec.State != StateFailed || rec.Trigger != StateFailed {
		t.Fatalf("flight record = %+v, want failed job %s", rec, st.ID)
	}
	var sawFailed bool
	for _, ev := range rec.Events {
		if strings.HasPrefix(ev.Msg, "state: failed") {
			sawFailed = true
		}
	}
	if !sawFailed {
		t.Fatalf("flight events missing failure transition: %+v", rec.Events)
	}

	// ...and after a restart on the same data dir, served from the
	// WAL-backed flight store with no in-memory job left.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("gen-1 shutdown: %v", err)
	}
	cancel()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel2()
		s2.Shutdown(ctx2)
	}()
	var rec2 store.FlightRecord
	getFlight(t, ts2, st.ID, &rec2)
	if rec2.JobID != st.ID || rec2.State != StateFailed {
		t.Fatalf("flight record after restart = %+v, want failed job %s", rec2, st.ID)
	}
	if len(rec2.Events) == 0 {
		t.Fatal("flight record lost its events across the restart")
	}
}

func getFlight(t *testing.T, ts *httptest.Server, id string, rec *store.FlightRecord) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/flightrecord")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET flightrecord: %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(rec); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecordUnknownJob keeps the 404 contract.
func TestFlightRecordUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/nope/flightrecord")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestSSEKeepaliveAndDroppedStream verifies idle streams carry ": ping"
// comment frames and that a client disconnect before the terminal
// event is counted and noted in the job's black box.
func TestSSEKeepaliveAndDroppedStream(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      0, // default GOMAXPROCS; the job below runs long enough
		MaxInsts:     -1,
		SSEKeepalive: 20 * time.Millisecond,
		ProgressPoll: time.Hour, // no progress events: only keepalives tick
	})
	resp, st := submit(t, ts, JobRequest{
		Workload: "gcc2k", Predictor: "composite", Insts: 80_000_000,
	})
	resp.Body.Close()
	if st.ID == "" {
		t.Fatalf("submit returned no id (status %d)", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	sresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	// Read until we see a keepalive comment frame.
	sc := bufio.NewScanner(sresp.Body)
	deadline := time.After(10 * time.Second)
	got := make(chan bool, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": ping") {
				got <- true
				return
			}
		}
		got <- false
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("stream ended without a keepalive frame")
		}
	case <-deadline:
		t.Fatal("no keepalive frame within 10s")
	}

	// Drop the client mid-stream: the server counts the abandonment.
	before := s.mSSEDropped.Value()
	cancel()
	waitFor(t, 5*time.Second, func() bool { return s.mSSEDropped.Value() > before })

	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	var noted bool
	for _, ev := range j.flight.eventsCopy() {
		if strings.Contains(ev.Msg, "stream dropped") {
			noted = true
		}
	}
	if !noted {
		t.Error("dropped stream not noted in the job's flight ring")
	}

	// Cancel the big job so cleanup does not wait out the full run.
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	cresp, err := ts.Client().Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricsQueryEndpoint smoke-checks GET /v1/metrics/query on the
// worker daemon: a scrape then a rate query over the request counter.
func TestMetricsQueryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ObsScrapeInterval: time.Hour})

	// Generate some traffic, then take two samples 10s apart.
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	t0 := time.Now()
	s.ScrapeObs(t0)
	t1 := t0.Add(10 * time.Second)
	s.ScrapeObs(t1)

	q := ts.URL + "/v1/metrics/query?q=lvpd_http_requests_total&time_ms=" +
		jsonInt(t1.UnixMilli())
	resp, err := ts.Client().Get(q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Query   string `json:"query"`
		Results []struct {
			Labels map[string]string `json:"labels,omitempty"`
			Value  float64           `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body.Results) == 0 {
		t.Fatalf("query status=%d body=%+v, want results", resp.StatusCode, body)
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
