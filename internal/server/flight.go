package server

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/store"
)

// Flight ring capacities: enough history to reconstruct the last
// minutes of a job's life without letting a long job grow its black
// box without bound.
const (
	flightEventCap = 64
	flightSnapCap  = 32
)

// flightRing is a job's in-memory black box: a bounded ring of
// lifecycle events and a bounded ring of progress snapshots. Events
// come from state/phase transitions and the SSE stream; snapshots are
// taken by the observability collector on its scrape tick. Cheap
// enough to keep on every job — writes happen at transition/scrape
// cadence, never on the simulation hot path.
type flightRing struct {
	mu     sync.Mutex
	events []store.FlightEvent
	evHead int
	snaps  []store.FlightSnapshot
	snHead int
}

// note appends one timestamped event, overwriting the oldest past cap.
func (f *flightRing) note(msg string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev := store.FlightEvent{Time: time.Now().UTC(), Msg: msg}
	if len(f.events) < flightEventCap {
		f.events = append(f.events, ev)
		return
	}
	f.events[f.evHead] = ev
	f.evHead = (f.evHead + 1) % flightEventCap
}

// sample appends one progress snapshot, overwriting the oldest past cap.
func (f *flightRing) sample(snap store.FlightSnapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.snaps) < flightSnapCap {
		f.snaps = append(f.snaps, snap)
		return
	}
	f.snaps[f.snHead] = snap
	f.snHead = (f.snHead + 1) % flightSnapCap
}

// eventsCopy returns the ring's events oldest first.
func (f *flightRing) eventsCopy() []store.FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]store.FlightEvent, 0, len(f.events))
	out = append(out, f.events[f.evHead:]...)
	out = append(out, f.events[:f.evHead]...)
	return out
}

// snapsCopy returns the ring's snapshots oldest first.
func (f *flightRing) snapsCopy() []store.FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]store.FlightSnapshot, 0, len(f.snaps))
	out = append(out, f.snaps[f.snHead:]...)
	out = append(out, f.snaps[:f.snHead]...)
	return out
}

// flightRecord assembles the job's black box for dumping or serving.
// trigger records why the dump happened ("" = live view).
func (j *job) flightRecord(trigger string) store.FlightRecord {
	j.mu.Lock()
	rec := store.FlightRecord{
		JobID:     j.id,
		SpecHash:  j.key,
		Tenant:    j.tenant,
		Workload:  j.sim.Workload.Name,
		Predictor: j.label,
		State:     j.state,
		Error:     j.errMsg,
		TraceID:   j.traceID,
		Trigger:   trigger,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
	j.mu.Unlock()
	rec.Events = j.flight.eventsCopy()
	rec.Snapshots = j.flight.snapsCopy()
	return rec
}

// sampleFlight records one progress snapshot into the job's black box,
// read from the same seqlock slot GET /v1/jobs/{id} uses. No-op unless
// the job is running with live progress.
func (j *job) sampleFlight(now time.Time) {
	st := j.status()
	if st.State != StateRunning || st.Progress == nil {
		return
	}
	p := st.Progress
	snap := store.FlightSnapshot{
		Time:         now.UTC(),
		Phase:        p.Phase,
		Instructions: p.Instructions,
		Cycles:       p.Cycles,
		SimMIPS:      p.SimMIPS,
	}
	for _, c := range p.Components {
		snap.Components = append(snap.Components, store.FlightComponent{
			Name:      c.Name,
			Used:      c.Used,
			Correct:   c.Correct,
			Incorrect: c.Incorrect,
			MPKP:      c.MPKP,
			Silenced:  c.Silenced,
		})
	}
	j.flight.sample(snap)
}

// dumpFlight persists the job's black box to the durable flight store.
// Best-effort: a dump failure is logged, never fatal — the job already
// settled, and the live ring still serves until the process exits.
func (s *Server) dumpFlight(j *job, trigger string) {
	if s.st == nil || s.crashed.Load() {
		return
	}
	if err := s.st.Flights().Put(j.flightRecord(trigger)); err != nil {
		s.log.Error("flight record dump failed", "id", j.id, "err", err)
	}
}

// sampleFlights snapshots every running job's progress into its flight
// ring — the collector's OnScrape hook.
func (s *Server) sampleFlights(now time.Time) {
	for _, j := range s.runningJobs() {
		j.sampleFlight(now)
	}
}

// runningJobs snapshots the currently running jobs.
func (s *Server) runningJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == StateRunning
		j.mu.Unlock()
		if running {
			out = append(out, j)
		}
	}
	return out
}

// handleFlightRecord implements GET /v1/jobs/{id}/flightrecord: a
// running job answers with its live black box; a settled or forgotten
// job answers from the durable flight store (which survives restarts
// via its own log). Jobs that finished cleanly and were never dumped
// still answer with their live ring while retained in memory.
func (s *Server) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		if !terminalState(j.status().State) {
			writeJSON(w, http.StatusOK, j.flightRecord(""))
			return
		}
	}
	if s.st != nil {
		if rec, ok := s.st.Flights().Get(id); ok {
			writeJSON(w, http.StatusOK, rec)
			return
		}
	}
	if j != nil {
		writeJSON(w, http.StatusOK, j.flightRecord(""))
		return
	}
	writeError(w, http.StatusNotFound, "no flight record for job")
}
