package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseEventName maps a job state to the SSE event name announcing it:
// the entry state keeps its own name, running becomes "started", and
// terminal states keep theirs ("done"/"failed"/"canceled").
func sseEventName(state string) string {
	if state == StateRunning {
		return "started"
	}
	return state
}

// terminalState reports whether a job state is final.
func terminalState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// handleJobEvents implements GET /v1/jobs/{id}/events: a Server-Sent
// Events stream of the job's lifecycle. The stream opens with the
// job's current state, announces state changes ("started", then one of
// "done"/"failed"/"canceled" carrying the full JobStatus including the
// result), and emits "progress" events with the live ProgressView
// whenever a poll of the job's progress slot observes new
// instructions. The stream closes after the terminal event or when the
// client disconnects. Polling (at Config.ProgressPoll) rather than
// pushing keeps the simulation hot path free of per-event work: the
// pipeline only ever writes its fixed-size seqlock slot.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		fmt.Fprintf(w, "event: %s\ndata: ", event)
		json.NewEncoder(w).Encode(v) // Encode terminates the data line
		fmt.Fprint(w, "\n")
		fl.Flush()
	}

	st := j.status()
	send(sseEventName(st.State), st)
	if terminalState(st.State) {
		return
	}
	lastState := st.State
	var lastPhase string
	var lastInsts uint64

	tick := time.NewTicker(s.cfg.ProgressPoll)
	defer tick.Stop()
	// Keepalive comment frames hold idle proxies open while a slow job
	// produces no progress events; a client gone before the terminal
	// event is a dropped stream, counted and noted in the job's black
	// box (a consumer losing its observer matters in a post-mortem).
	keep := time.NewTicker(s.cfg.SSEKeepalive)
	defer keep.Stop()
	for {
		select {
		case <-r.Context().Done():
			s.mSSEDropped.Inc()
			j.flight.note("event stream dropped before terminal state")
			return
		case <-keep.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-j.done:
			send(sseEventName(j.status().State), j.status())
			return
		case <-tick.C:
			st := j.status()
			if terminalState(st.State) {
				// j.done closes after the state settles; let that arm
				// emit the terminal event exactly once.
				continue
			}
			if st.State != lastState {
				lastState = st.State
				send(sseEventName(st.State), st)
			}
			if p := st.Progress; p != nil && (p.Phase != lastPhase || p.Instructions != lastInsts) {
				lastPhase, lastInsts = p.Phase, p.Instructions
				send("progress", p)
			}
		}
	}
}
