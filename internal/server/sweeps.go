package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	otrace "repro/internal/obs/trace"
	"repro/internal/spec"
)

// SweepAxes lists the values each swept dimension takes. Empty axes
// keep the template's value; the expansion is the cartesian product of
// the non-empty axes, applied to the template spec before
// normalization (so e.g. a swept "best" family still expands to its
// composite canonical form).
type SweepAxes struct {
	// Workloads overrides the workload name.
	Workloads []string `json:"workloads,omitempty"`

	// Predictors overrides the predictor family.
	Predictors []string `json:"predictors,omitempty"`

	// EntriesPer overrides the per-component table sizing (it replaces
	// any explicit per-component entries in the template).
	EntriesPer []int `json:"entries,omitempty"`

	// AMs overrides the accuracy monitor mode.
	AMs []string `json:"ams,omitempty"`

	// BudgetsKB overrides the EVES storage budget.
	BudgetsKB []int `json:"budgets_kb,omitempty"`

	// Seeds overrides the run seed.
	Seeds []uint64 `json:"seeds,omitempty"`

	// Machines overrides the whole machine spec per point.
	Machines []spec.MachineSpec `json:"machines,omitempty"`

	// Contexts overrides the machine's hardware context count (applied
	// after any Machines value, so the two axes compose). A template
	// without per-context workload names runs its workload on every
	// context.
	Contexts []int `json:"contexts,omitempty"`
}

// SweepRequest expands a job template across axis lists into one
// cached job per cartesian point.
type SweepRequest struct {
	Template JobRequest `json:"template"`
	Axes     SweepAxes  `json:"axes"`
}

// SweepResponse reports the expanded jobs in expansion order (last
// axis fastest). Each entry is a regular job status: done for cache
// hits, queued for admitted work, or rejected for points the full
// queue shed — resubmit those points after Retry-After.
type SweepResponse struct {
	Count    int         `json:"count"`
	Cached   int         `json:"cached"`
	Queued   int         `json:"queued"`
	Rejected int         `json:"rejected"`
	Jobs     []JobStatus `json:"jobs"`
}

// sweepPoint is one expanded configuration plus the predictor label
// its responses echo ("" = derive from the normalized family).
type sweepPoint struct {
	sim   spec.Sim
	label string
}

// Point is one validated sweep point: the canonical spec, the label
// its responses echo, and the spec hash — the idempotency key cluster
// dispatch retries and dedups on.
type Point struct {
	Sim   spec.Sim
	Label string
	Hash  string
}

// Expand returns the sweep's validated cartesian expansion under
// defaults d, capped at max points (0 = the package default). Every
// point's Sim is canonical and its Hash is the result-cache key, so
// callers — the local sweep handler and the cluster coordinator alike
// — can dedup and dispatch points by hash. A single invalid point
// fails the whole expansion, so a bad axis value can never leave a
// half-submitted sweep behind.
func (r SweepRequest) Expand(d spec.Defaults, max int) ([]Point, error) {
	if max <= 0 {
		max = defaultMaxSweepPoints
	}
	raw, err := r.expand(max)
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(raw))
	for i, p := range raw {
		sim, hash, err := p.sim.Canonical(d)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		label := p.label
		if label == "" {
			label = r.Template.Label(sim)
		}
		points[i] = Point{Sim: sim, Label: label, Hash: hash}
	}
	return points, nil
}

// expand returns the cartesian expansion of the template across the
// axes as un-normalized specs.
func (r SweepRequest) expand(max int) ([]sweepPoint, error) {
	base, err := r.Template.rawSpec()
	if err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	points := []sweepPoint{{sim: base}}
	mul := func(n int, apply func(p *sweepPoint, i int)) {
		if n == 0 {
			return
		}
		next := make([]sweepPoint, 0, len(points)*n)
		for _, p := range points {
			for i := 0; i < n; i++ {
				q := p
				apply(&q, i)
				next = append(next, q)
			}
		}
		points = next
	}
	mul(len(r.Axes.Workloads), func(p *sweepPoint, i int) {
		p.sim.Workload.Name = r.Axes.Workloads[i]
	})
	mul(len(r.Axes.Predictors), func(p *sweepPoint, i int) {
		p.sim.Predictor.Family = spec.Family(r.Axes.Predictors[i])
		p.label = r.Axes.Predictors[i]
	})
	mul(len(r.Axes.EntriesPer), func(p *sweepPoint, i int) {
		p.sim.Predictor.EntriesPer = r.Axes.EntriesPer[i]
		p.sim.Predictor.Entries = [core.NumComponents]int{}
	})
	mul(len(r.Axes.AMs), func(p *sweepPoint, i int) {
		p.sim.Predictor.AM = spec.AMMode(r.Axes.AMs[i])
	})
	mul(len(r.Axes.BudgetsKB), func(p *sweepPoint, i int) {
		p.sim.Predictor.BudgetKB = r.Axes.BudgetsKB[i]
	})
	mul(len(r.Axes.Seeds), func(p *sweepPoint, i int) {
		p.sim.Run.Seed = r.Axes.Seeds[i]
	})
	mul(len(r.Axes.Machines), func(p *sweepPoint, i int) {
		p.sim.Machine = r.Axes.Machines[i]
	})
	mul(len(r.Axes.Contexts), func(p *sweepPoint, i int) {
		p.sim.Machine.Contexts = r.Axes.Contexts[i]
	})
	if len(points) > max {
		return nil, fmt.Errorf("sweep expands to %d jobs, max %d", len(points), max)
	}
	return points, nil
}

// handleSweep implements POST /v1/sweeps: expand the template across
// the axes, validate every point, then admit each point through the
// same cache/queue path as POST /v1/jobs. The response is 200 when
// every point was answered from cache, 202 when any point was queued,
// and 429 (+ Retry-After) when backpressure shed any point.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tn := s.requestTenant(r)
	maxPoints := s.cfg.MaxSweepPoints
	if tn.MaxSweepPoints > 0 && tn.MaxSweepPoints < maxPoints {
		maxPoints = tn.MaxSweepPoints
	}
	points, err := req.Expand(s.specDefaults(), maxPoints)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	resp := SweepResponse{Count: len(points), Jobs: make([]JobStatus, len(points))}
	code := http.StatusOK
	// Shed points report the same EWMA-drain-derived Retry-After a
	// single-job 429 would: the largest hint among the shed points (the
	// moment the whole backlog ahead of the sweep has drained).
	retryAfter := 0
	for i, p := range points {
		j, c, ra := s.admit(tn, p.Sim, p.Label, req.Template.TimeoutMS, otrace.ContextSpanContext(r.Context()))
		switch c {
		case http.StatusOK:
			resp.Cached++
			resp.Jobs[i] = j.status()
		case http.StatusAccepted:
			resp.Queued++
			if code == http.StatusOK {
				code = http.StatusAccepted
			}
			resp.Jobs[i] = j.status()
		default: // queue full, over budget, or shutting down: the point was shed
			resp.Rejected++
			code = http.StatusTooManyRequests
			if ra == 0 {
				ra = s.retryAfterSeconds(tn)
			}
			if ra > retryAfter {
				retryAfter = ra
			}
			resp.Jobs[i] = JobStatus{
				State:    StateRejected,
				SpecHash: p.Hash,
				Tenant:   tn.Name,
				Error:    "job queue full; resubmit this point later",
			}
		}
	}
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, code, resp)
}

// handlePresets implements GET /v1/presets: the named starting specs
// of internal/spec, usable as JobRequest.Preset.
func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	type presetInfo struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Spec        spec.Sim `json:"spec"`
	}
	out := make([]presetInfo, 0, len(spec.PresetNames()))
	for _, n := range spec.PresetNames() {
		sim, _ := spec.Preset(n)
		out = append(out, presetInfo{Name: n, Description: spec.PresetDescription(n), Spec: sim})
	}
	writeJSON(w, http.StatusOK, map[string]any{"presets": out})
}
