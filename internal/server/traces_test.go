package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// mustMetric asserts that the /metrics text contains the exact rendered
// line, failing with the relevant excerpt otherwise.
func mustMetric(t *testing.T, text, line string) {
	t.Helper()
	if !strings.Contains(text, line) {
		var got []string
		for _, l := range strings.Split(text, "\n") {
			if strings.Contains(l, "trace_artifact") {
				got = append(got, l)
			}
		}
		t.Fatalf("metrics missing %q; artifact lines:\n%s", line, strings.Join(got, "\n"))
	}
}

// TestJobsReplayTraceArtifacts pins the server's zero-regeneration
// property: across jobs that share a (workload, insts) spec, the
// instruction stream is generated exactly once — the baseline run
// records it, and every later run (including other predictors' runs)
// replays the shared artifact.
func TestJobsReplayTraceArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, pred := range []string{"lvp", "sap"} {
		resp, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: pred, Insts: 20_000})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", pred, resp.StatusCode)
		}
		waitState(t, ts, st.ID, 30*time.Second, StateDone)
	}
	text := metricsText(t, ts)
	mustMetric(t, text, `lvpd_trace_artifact_generated_total 1`)
	mustMetric(t, text, `lvpd_trace_artifact_hits_total{source="memory"} 2`)
	mustMetric(t, text, `lvpd_trace_artifact_received_total 0`)
}

// TestTraceEndpoints covers the artifact transfer surface: GET returns
// the stored artifact under its content address, PUT installs one (so
// a server that received an artifact serves all matching jobs with zero
// live generation), and both reject what they must.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := submit(t, ts, JobRequest{Workload: "mcf", Predictor: "lvp", Insts: 20_000})
	waitState(t, ts, st.ID, 30*time.Second, StateDone)

	key := trace.ArtifactKey("mcf", 20_000)
	resp, err := ts.Client().Get(ts.URL + "/v1/traces/" + key)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(data) == 0 {
		t.Fatalf("GET trace: status %d, %d bytes", resp.StatusCode, len(data))
	}
	if _, err := gzip.NewReader(bytes.NewReader(data)); err != nil {
		t.Fatalf("artifact is not gzip: %v", err)
	}
	if resp, err = ts.Client().Get(ts.URL + "/v1/traces/ffffffffffffffff"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown trace: status %d, want 404", resp.StatusCode)
	}

	// A second server fed the artifact runs the same spec without ever
	// generating the stream.
	_, ts2 := newTestServer(t, Config{Workers: 1})
	put := func(key string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts2.URL+"/v1/traces/"+key, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := ts2.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(key, data); code != http.StatusNoContent {
		t.Fatalf("PUT trace: status %d, want 204", code)
	}
	if code := put(key, []byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("PUT garbage: status %d, want 400", code)
	}
	if code := put(trace.ArtifactKey("mcf", 21_000), data); code != http.StatusBadRequest {
		t.Fatalf("PUT under wrong address: status %d, want 400", code)
	}

	_, st = submit(t, ts2, JobRequest{Workload: "mcf", Predictor: "lvp", Insts: 20_000})
	waitState(t, ts2, st.ID, 30*time.Second, StateDone)
	text := metricsText(t, ts2)
	mustMetric(t, text, `lvpd_trace_artifact_generated_total 0`)
	mustMetric(t, text, `lvpd_trace_artifact_received_total 1`)
	mustMetric(t, text, `lvpd_trace_artifact_hits_total{source="memory"} 2`)
}

// TestTraceCacheDirSurvivesRestart pins the disk layer: a restarted
// server pointed at the same TraceCacheDir replays recorded artifacts
// instead of regenerating them.
func TestTraceCacheDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, TraceCacheDir: dir})
	_, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000})
	waitState(t, ts, st.ID, 30*time.Second, StateDone)

	_, ts2 := newTestServer(t, Config{Workers: 1, TraceCacheDir: dir})
	_, st = submit(t, ts2, JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000})
	waitState(t, ts2, st.ID, 30*time.Second, StateDone)
	text := metricsText(t, ts2)
	mustMetric(t, text, `lvpd_trace_artifact_generated_total 0`)
	mustMetric(t, text, `lvpd_trace_artifact_hits_total{source="disk"} 1`)
	mustMetric(t, text, `lvpd_trace_artifact_hits_total{source="memory"} 1`)
}
