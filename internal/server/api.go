// Package server exposes the simulator as a concurrent job service: a
// stdlib-only net/http daemon with a bounded FIFO queue feeding a
// worker pool, an LRU result cache keyed by the canonical request hash,
// per-job cancellation, and an obs-backed metrics/health layer. The
// request/response types here are also the schema cmd/lvpsim -json
// emits, so CLI and service outputs stay in sync.
package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/expt"
	"repro/internal/spec"
	"repro/internal/stats"
)

// JobRequest describes one simulation. The declarative form sets Spec
// (or Preset) — the machine/predictor/workload/run description of
// internal/spec — while the flat fields keep the original API working.
// Both forms resolve to one spec.Sim, and the spec's canonical hash is
// the job's cache identity, so however a simulation is spelled,
// equivalent requests share a cache entry.
type JobRequest struct {
	// Spec is the full declarative simulation spec. When set it wins
	// over the flat fields below (Workload/Insts/Seed still fill
	// empty spec fields for convenience). Mutually exclusive with
	// Preset and Machine.
	Spec *spec.Sim `json:"spec,omitempty"`

	// Preset names a starting spec (see GET /v1/presets, e.g.
	// "best-9.6KB"); flat fields fill the workload and run.
	Preset string `json:"preset,omitempty"`

	// Machine applies machine-config deltas over the paper's Table III
	// baseline to the flat form or preset (e.g. {"rob":512,
	// "paq_depth":8}).
	Machine *spec.MachineSpec `json:"machine,omitempty"`

	// Workload is the workload name (see GET /v1/workloads).
	Workload string `json:"workload,omitempty"`

	// Predictor is one of none|lvp|sap|cvp|cap|composite|best|eves.
	Predictor string `json:"predictor,omitempty"`

	// Entries sizes the component tables (composite families); 0 means
	// 1024 per component.
	Entries int `json:"entries,omitempty"`

	// BudgetKB is the EVES storage budget in KB (0 = server default 32;
	// -1 = infinite).
	BudgetKB int `json:"budget_kb,omitempty"`

	// AM selects the composite accuracy monitor: ""|none|m|pc|pcinf
	// ("" = pc). Single-component families ignore it, as they always
	// have.
	AM string `json:"am,omitempty"`

	// Insts is the instruction budget (0 = server default).
	Insts uint64 `json:"insts,omitempty"`

	// Seed drives predictor randomness (0 = server default).
	Seed uint64 `json:"seed,omitempty"`

	// TimeoutMS bounds the job's simulation time; 0 means the server
	// default. The timeout is not part of the cache identity.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// rawSpec assembles the un-normalized spec.Sim the request describes.
func (r JobRequest) rawSpec() (spec.Sim, error) {
	var sim spec.Sim
	switch {
	case r.Spec != nil:
		if r.Preset != "" {
			return sim, fmt.Errorf("spec and preset are mutually exclusive")
		}
		if r.Machine != nil {
			return sim, fmt.Errorf("machine and spec are mutually exclusive (set spec.machine)")
		}
		sim = *r.Spec
	case r.Preset != "":
		p, ok := spec.Preset(r.Preset)
		if !ok {
			return sim, fmt.Errorf("unknown preset %q (see GET /v1/presets)", r.Preset)
		}
		sim = p
	default:
		sim.Predictor = spec.PredictorSpec{
			Family:     spec.Family(r.Predictor),
			EntriesPer: r.Entries,
			BudgetKB:   r.BudgetKB,
		}
		// The flat AM field only ever applied to the composite
		// families; single components and EVES ignore it.
		switch sim.Predictor.Family {
		case "", spec.FamilyComposite, spec.FamilyBest:
			sim.Predictor.AM = spec.AMMode(r.AM)
		}
	}
	if r.Machine != nil {
		sim.Machine = *r.Machine
	}
	if sim.Workload.Name == "" {
		sim.Workload.Name = r.Workload
	}
	if sim.Workload.Insts == 0 {
		sim.Workload.Insts = r.Insts
	}
	if sim.Run.Seed == 0 {
		sim.Run.Seed = r.Seed
	}
	return sim, nil
}

// ResolveSpec normalizes the request into its canonical spec under the
// server defaults and validates it. The spec's CanonicalHash is the
// job's cache key: everything that changes the result participates,
// the timeout does not, and equivalent spellings (flat fields vs
// explicit spec, any JSON key order, defaults written out vs omitted)
// produce the same key.
func (r JobRequest) ResolveSpec(d spec.Defaults) (spec.Sim, error) {
	sim, err := r.rawSpec()
	if err != nil {
		return sim, err
	}
	sim.Normalize(d)
	if err := sim.Validate(); err != nil {
		return sim, err
	}
	return sim, nil
}

// Label returns the predictor name responses echo: the requested
// spelling for flat requests ("best" stays "best"), the canonical
// family otherwise.
func (r JobRequest) Label(sim spec.Sim) string {
	if r.Spec == nil && r.Preset == "" && r.Predictor != "" {
		return r.Predictor
	}
	return string(sim.Predictor.Family)
}

// FlushCounts breaks recovery events out by cause.
type FlushCounts struct {
	Value    uint64 `json:"value"`
	Branch   uint64 `json:"branch"`
	MemOrder uint64 `json:"mem_order"`
}

// ComponentResult is one composite component's contribution.
type ComponentResult struct {
	Name      string `json:"name"`
	Used      uint64 `json:"used"`
	Correct   uint64 `json:"correct"`
	Incorrect uint64 `json:"incorrect"`
}

// ContextResult is one hardware context's slice of a multi-context
// (SMT) run: the context's own metrics against its slice of the SMT
// baseline (both runs shared the machine with the other contexts, so
// the speedup isolates the predictor's effect under contention).
type ContextResult struct {
	Context      int     `json:"context"`
	Workload     string  `json:"workload"`
	Stream       string  `json:"stream"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	BaselineIPC  float64 `json:"baseline_ipc"`
	SpeedupPct   float64 `json:"speedup_pct"`
	CoveragePct  float64 `json:"coverage_pct"`
	Accuracy     float64 `json:"accuracy"`

	Flushes FlushCounts `json:"flushes"`
}

// RunResult is the outcome of one simulation: headline metrics against
// the no-VP baseline plus the optional per-component breakdown. It is
// the payload of GET /v1/jobs/{id} and of lvpsim -json. Multi-context
// (SMT) results carry machine-wide merged metrics in the headline
// fields — Workload is the mix label ("a+b"), Instructions/Cycles and
// the flush counts are summed over contexts, IPC is the machine
// aggregate — plus the per-context breakdown in PerContext.
type RunResult struct {
	Workload     string  `json:"workload"`
	Predictor    string  `json:"predictor"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	BaselineIPC  float64 `json:"baseline_ipc"`
	SpeedupPct   float64 `json:"speedup_pct"`
	CoveragePct  float64 `json:"coverage_pct"`
	Accuracy     float64 `json:"accuracy"`

	Flushes FlushCounts `json:"flushes"`

	// Contexts is the simulated hardware context count; omitted (0) for
	// single-context runs.
	Contexts int `json:"contexts,omitempty"`

	// PerContext breaks a multi-context run out by hardware context.
	PerContext []ContextResult `json:"per_context,omitempty"`

	// Components is the per-component breakdown (composite families
	// only).
	Components []ComponentResult `json:"components,omitempty"`

	// StorageKB is the predictor's storage budget, when known.
	StorageKB float64 `json:"storage_kb,omitempty"`

	// SimInstructions counts the instructions simulated to produce
	// this result: the configured run plus the baseline when the job
	// had to simulate it (a baseline already cached in the shared
	// context is not re-counted). Cache-hit responses replay the
	// producing job's value; JobStatus.CacheHit distinguishes them.
	SimInstructions uint64 `json:"sim_instructions,omitempty"`

	// SimMIPS is the producing job's simulation throughput in millions
	// of instructions per wall-clock second.
	SimMIPS float64 `json:"sim_mips,omitempty"`
}

// NewRunResult assembles the response payload from a configured run,
// its baseline, and (optionally) the composite whose engine produced
// the run.
func NewRunResult(run, base stats.Run, comp *core.Composite) RunResult {
	res := RunResult{
		Workload:     run.Workload,
		Predictor:    run.Config,
		Instructions: run.Instructions,
		Cycles:       run.Cycles,
		IPC:          run.IPC(),
		BaselineIPC:  base.IPC(),
		SpeedupPct:   stats.Speedup(run, base),
		CoveragePct:  run.Coverage(),
		Accuracy:     run.Accuracy(),
		Flushes: FlushCounts{
			Value:    run.VPFlushes,
			Branch:   run.BranchFlushes,
			MemOrder: run.MemOrderFlushes,
		},
	}
	if comp != nil {
		st := comp.Stats()
		for c := core.Component(0); c < core.NumComponents; c++ {
			if comp.Component(c) == nil {
				continue
			}
			res.Components = append(res.Components, ComponentResult{
				Name:      c.String(),
				Used:      st.UsedBy[c],
				Correct:   st.CorrectBy[c],
				Incorrect: st.IncorrectBy[c],
			})
		}
		res.StorageKB = comp.StorageKB()
	}
	return res
}

// NewSMTRunResult assembles the response payload of a multi-context
// run: merged headline metrics plus one ContextResult per context,
// each speedup computed against the matching context of the SMT
// baseline. streams names each context's instruction stream.
func NewSMTRunResult(run, base expt.SMTResult, streams []string, comp *core.Composite) RunResult {
	res := NewRunResult(run.Merged, base.Merged, comp)
	res.Contexts = len(run.Per)
	res.PerContext = make([]ContextResult, len(run.Per))
	for i, r := range run.Per {
		cr := ContextResult{
			Context:      i,
			Workload:     r.Workload,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC(),
			CoveragePct:  r.Coverage(),
			Accuracy:     r.Accuracy(),
			Flushes: FlushCounts{
				Value:    r.VPFlushes,
				Branch:   r.BranchFlushes,
				MemOrder: r.MemOrderFlushes,
			},
		}
		if i < len(streams) {
			cr.Stream = streams[i]
		}
		if i < len(base.Per) {
			cr.BaselineIPC = base.Per[i].IPC()
			cr.SpeedupPct = stats.Speedup(r, base.Per[i])
		}
		res.PerContext[i] = cr
	}
	return res
}

// CompositeFromEngine unwraps the composite behind an engine, when
// there is one (for the per-component breakdown).
func CompositeFromEngine(eng cpu.Engine) *core.Composite {
	if ce, ok := eng.(*cpu.CompositeEngine); ok {
		return ce.C
	}
	return nil
}

// ComponentProgress is one predictor component's live counters in a
// ProgressView: predictions used so far, validation outcomes, and the
// accuracy monitor's current-epoch view (mispredictions per kilo
// prediction plus whether the monitor has silenced the component).
type ComponentProgress struct {
	Name      string  `json:"name"`
	Used      uint64  `json:"used"`
	Correct   uint64  `json:"correct"`
	Incorrect uint64  `json:"incorrect"`
	MPKP      float64 `json:"mpkp"`
	Silenced  bool    `json:"silenced,omitempty"`
}

// ProgressView is a running job's live progress as reported by
// GET /v1/jobs/{id} and streamed by GET /v1/jobs/{id}/events: which
// phase the job is in (baseline|run), how far through the phase's
// instruction budget it is, the simulation rate, and the per-component
// predictor telemetry (run phase of composite-family jobs only).
type ProgressView struct {
	Phase             string  `json:"phase"`
	Instructions      uint64  `json:"instructions"`
	TotalInstructions uint64  `json:"total_instructions"`
	Pct               float64 `json:"pct"`
	Cycles            uint64  `json:"cycles"`
	SimMIPS           float64 `json:"sim_mips"`

	Components []ComponentProgress `json:"components,omitempty"`

	// PerContext is the per-context live progress of a multi-context
	// run: one row per hardware context, published by the pipeline's
	// seqlock rows on the same cadence as the machine-wide aggregate
	// above.
	PerContext []ContextProgress `json:"per_context,omitempty"`
}

// ContextProgress is one hardware context's live progress row.
type ContextProgress struct {
	Context      int     `json:"context"`
	Workload     string  `json:"workload"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	Pct          float64 `json:"pct"`
}

// NewProgressView renders one progress snapshot for a phase with the
// given instruction budget. Components with no activity are omitted.
func NewProgressView(phase string, total uint64, s cpu.ProgressSnapshot) ProgressView {
	pv := ProgressView{
		Phase:             phase,
		Instructions:      s.Instructions,
		TotalInstructions: total,
		Cycles:            s.Cycles,
		SimMIPS:           s.SimMIPS(),
	}
	if total > 0 {
		pv.Pct = 100 * float64(s.Instructions) / float64(total)
	}
	for c := core.Component(0); c < core.NumComponents; c++ {
		if s.Used[c] == 0 && s.Correct[c] == 0 && s.Incorrect[c] == 0 &&
			s.MPKP[c] == 0 && !s.Silenced.Has(c) {
			continue
		}
		pv.Components = append(pv.Components, ComponentProgress{
			Name:      c.String(),
			Used:      s.Used[c],
			Correct:   s.Correct[c],
			Incorrect: s.Incorrect[c],
			MPKP:      s.MPKP[c],
			Silenced:  s.Silenced.Has(c),
		})
	}
	return pv
}

// Job states reported by JobStatus.State. StateRejected appears only
// in sweep responses, for points the full queue shed.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
	StateRejected = "rejected"
)

// JobStatus is the response of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`

	// SpecHash is the canonical hash of the job's resolved spec — the
	// result-cache key.
	SpecHash string `json:"spec_hash,omitempty"`

	// Tenant names the tenant the job is attributed to ("default" in
	// single-tenant deployments).
	Tenant string `json:"tenant,omitempty"`

	// Error explains failed/canceled states.
	Error string `json:"error,omitempty"`

	// Result is set once State is done.
	Result *RunResult `json:"result,omitempty"`

	// CacheHit marks a job answered from the result cache without
	// simulating.
	CacheHit bool `json:"cache_hit,omitempty"`

	// TraceID names the trace the job's spans were recorded under (the
	// submitter's trace when the submit request carried a traceparent
	// header, a fresh one otherwise). Set once the job starts running;
	// the trace is exportable at GET /debug/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`

	// Progress is the live mid-run view (running jobs only, once the
	// first snapshot has been published).
	Progress *ProgressView `json:"progress,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// JobSummary is one row of GET /v1/jobs: enough to inspect a backlog
// (state + spec hash) without shipping result payloads.
type JobSummary struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	SpecHash  string     `json:"spec_hash,omitempty"`
	Tenant    string     `json:"tenant,omitempty"`
	Workload  string     `json:"workload,omitempty"`
	Predictor string     `json:"predictor,omitempty"`
	CacheHit  bool       `json:"cache_hit,omitempty"`
	Created   time.Time  `json:"created"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// JobList is the response of GET /v1/jobs: retained jobs most recent
// first, paginated by offset/limit. Total counts every retained job,
// so offset >= total means the listing is exhausted.
type JobList struct {
	Jobs   []JobSummary `json:"jobs"`
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
}

// Health is the GET /healthz payload. The cluster coordinator reads it
// when probing workers: QueueDepth feeds load-aware scheduling and
// SimMIPS is re-exported as the per-worker throughput metric.
type Health struct {
	Status       string  `json:"status"`
	QueueDepth   int     `json:"queue_depth"`
	JobsInflight int64   `json:"jobs_inflight"`
	CacheEntries int     `json:"cache_entries"`
	SimMIPS      float64 `json:"sim_mips,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

func marshalError(msg string) []byte {
	b, _ := json.Marshal(errorBody{Error: msg})
	return b
}
