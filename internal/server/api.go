// Package server exposes the simulator as a concurrent job service: a
// stdlib-only net/http daemon with a bounded FIFO queue feeding a
// worker pool, an LRU result cache keyed by the canonical request hash,
// per-job cancellation, and an obs-backed metrics/health layer. The
// request/response types here are also the schema cmd/lvpsim -json
// emits, so CLI and service outputs stay in sync.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Predictor family names accepted by JobRequest.Predictor.
var predictorNames = map[string]bool{
	"none": true, "lvp": true, "sap": true, "cvp": true, "cap": true,
	"composite": true, "best": true, "eves": true,
}

// JobRequest describes one simulation: a workload, a predictor family
// and its sizing, an instruction budget, and a seed. The zero value of
// every optional field selects the server default.
type JobRequest struct {
	// Workload is the workload name (see GET /v1/workloads).
	Workload string `json:"workload"`

	// Predictor is one of none|lvp|sap|cvp|cap|composite|best|eves.
	Predictor string `json:"predictor"`

	// Entries sizes the component tables (composite families); 0 means
	// 1024 per component.
	Entries int `json:"entries,omitempty"`

	// BudgetKB is the EVES storage budget in KB (0 = server default 32;
	// -1 = infinite).
	BudgetKB int `json:"budget_kb,omitempty"`

	// AM selects the composite accuracy monitor: ""|none|m|pc|pcinf
	// ("" = pc).
	AM string `json:"am,omitempty"`

	// Insts is the instruction budget (0 = server default).
	Insts uint64 `json:"insts,omitempty"`

	// Seed drives predictor randomness (0 = server default).
	Seed uint64 `json:"seed,omitempty"`

	// TimeoutMS bounds the job's simulation time; 0 means the server
	// default. The timeout is not part of the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize fills defaulted fields in place so that equivalent requests
// hash identically. maxInsts > 0 clamps the budget.
func (r *JobRequest) Normalize(defaultInsts, maxInsts uint64) {
	if r.Predictor == "" {
		r.Predictor = "composite"
	}
	if r.Entries == 0 {
		r.Entries = 1024
	}
	if r.BudgetKB == 0 {
		r.BudgetKB = 32
	}
	if r.AM == "" {
		r.AM = "pc"
	}
	if r.Insts == 0 {
		r.Insts = defaultInsts
	}
	if maxInsts > 0 && r.Insts > maxInsts {
		r.Insts = maxInsts
	}
	if r.Seed == 0 {
		r.Seed = 0xC0FFEE
	}
}

// Validate reports whether the (normalized) request names a known
// workload and predictor family.
func (r *JobRequest) Validate() error {
	if _, ok := trace.ByName(r.Workload); !ok {
		return fmt.Errorf("unknown workload %q", r.Workload)
	}
	if !predictorNames[r.Predictor] {
		return fmt.Errorf("unknown predictor %q (want none|lvp|sap|cvp|cap|composite|best|eves)", r.Predictor)
	}
	if r.Entries < 0 {
		return fmt.Errorf("entries must be >= 0")
	}
	return nil
}

// CacheKey returns the canonical hash identifying the simulation this
// request asks for. Everything that changes the result participates;
// the timeout does not.
func (r JobRequest) CacheKey() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%s|%d|%d",
		r.Workload, r.Predictor, r.Entries, r.BudgetKB, r.AM, r.Insts, r.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FlushCounts breaks recovery events out by cause.
type FlushCounts struct {
	Value    uint64 `json:"value"`
	Branch   uint64 `json:"branch"`
	MemOrder uint64 `json:"mem_order"`
}

// ComponentResult is one composite component's contribution.
type ComponentResult struct {
	Name      string `json:"name"`
	Used      uint64 `json:"used"`
	Correct   uint64 `json:"correct"`
	Incorrect uint64 `json:"incorrect"`
}

// RunResult is the outcome of one simulation: headline metrics against
// the no-VP baseline plus the optional per-component breakdown. It is
// the payload of GET /v1/jobs/{id} and of lvpsim -json.
type RunResult struct {
	Workload     string  `json:"workload"`
	Predictor    string  `json:"predictor"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	BaselineIPC  float64 `json:"baseline_ipc"`
	SpeedupPct   float64 `json:"speedup_pct"`
	CoveragePct  float64 `json:"coverage_pct"`
	Accuracy     float64 `json:"accuracy"`

	Flushes FlushCounts `json:"flushes"`

	// Components is the per-component breakdown (composite families
	// only).
	Components []ComponentResult `json:"components,omitempty"`

	// StorageKB is the predictor's storage budget, when known.
	StorageKB float64 `json:"storage_kb,omitempty"`

	// SimInstructions counts the instructions simulated to produce
	// this result: the configured run plus the baseline when the job
	// had to simulate it (a baseline already cached in the shared
	// context is not re-counted). Cache-hit responses replay the
	// producing job's value; JobStatus.CacheHit distinguishes them.
	SimInstructions uint64 `json:"sim_instructions,omitempty"`

	// SimMIPS is the producing job's simulation throughput in millions
	// of instructions per wall-clock second.
	SimMIPS float64 `json:"sim_mips,omitempty"`
}

// NewRunResult assembles the response payload from a configured run,
// its baseline, and (optionally) the composite whose engine produced
// the run.
func NewRunResult(run, base stats.Run, comp *core.Composite) RunResult {
	res := RunResult{
		Workload:     run.Workload,
		Predictor:    run.Config,
		Instructions: run.Instructions,
		Cycles:       run.Cycles,
		IPC:          run.IPC(),
		BaselineIPC:  base.IPC(),
		SpeedupPct:   stats.Speedup(run, base),
		CoveragePct:  run.Coverage(),
		Accuracy:     run.Accuracy(),
		Flushes: FlushCounts{
			Value:    run.VPFlushes,
			Branch:   run.BranchFlushes,
			MemOrder: run.MemOrderFlushes,
		},
	}
	if comp != nil {
		st := comp.Stats()
		for c := core.Component(0); c < core.NumComponents; c++ {
			if comp.Component(c) == nil {
				continue
			}
			res.Components = append(res.Components, ComponentResult{
				Name:      c.String(),
				Used:      st.UsedBy[c],
				Correct:   st.CorrectBy[c],
				Incorrect: st.IncorrectBy[c],
			})
		}
		res.StorageKB = comp.StorageKB()
	}
	return res
}

// CompositeFromEngine unwraps the composite behind an engine, when
// there is one (for the per-component breakdown).
func CompositeFromEngine(eng cpu.Engine) *core.Composite {
	if ce, ok := eng.(*cpu.CompositeEngine); ok {
		return ce.C
	}
	return nil
}

// Job states reported by JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the response of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`

	// Error explains failed/canceled states.
	Error string `json:"error,omitempty"`

	// Result is set once State is done.
	Result *RunResult `json:"result,omitempty"`

	// CacheHit marks a job answered from the result cache without
	// simulating.
	CacheHit bool `json:"cache_hit,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

func marshalError(msg string) []byte {
	b, _ := json.Marshal(errorBody{Error: msg})
	return b
}
