package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/expt"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/obs/tsdb"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// DefaultSeed fills Run.Seed when a request leaves it at 0. It is
// exported so the cluster coordinator canonicalizes specs under the
// same defaults as the workers it dispatches to — a prerequisite for
// spec hashes agreeing across the fleet.
const DefaultSeed = 0xC0FFEE

// defaultMaxSweepPoints is the default cap on one sweep's expansion.
const defaultMaxSweepPoints = 256

// maxSweepPointsCeiling rejects absurd MaxSweepPoints configurations:
// beyond a million points per sweep the expansion itself (validation,
// response payload) is the problem, not the cap.
const maxSweepPointsCeiling = 1 << 20

// Config tunes the job service. Zero values select the defaults noted
// per field.
type Config struct {
	// Workers is the simulation worker pool size (default GOMAXPROCS).
	Workers int

	// QueueDepth bounds the FIFO of accepted-but-unstarted jobs
	// (default 64). A full queue rejects submissions with 429.
	QueueDepth int

	// CacheSize is the result LRU capacity (default 1024 entries).
	CacheSize int

	// DefaultInsts is the instruction budget applied to requests that
	// leave Insts at 0 (default 200k).
	DefaultInsts uint64

	// MaxInsts clamps per-request budgets (default 5M; -1 = unlimited).
	MaxInsts int64

	// JobTimeout is the per-job simulation deadline applied when a
	// request has no timeout_ms (default 2 minutes).
	JobTimeout time.Duration

	// RetainedJobs bounds how many finished jobs stay queryable
	// (default 4096); older finished jobs are forgotten FIFO.
	RetainedJobs int

	// MaxSweepPoints caps how many jobs one POST /v1/sweeps may expand
	// to (default 256). Cluster coordinators raise it: their sweeps fan
	// out across workers instead of one queue.
	MaxSweepPoints int

	// Logger receives structured request and job logs (default
	// slog.Default).
	Logger *slog.Logger

	// ServiceName labels this process's spans in trace exports
	// (default "lvpd"). Cluster workers set it to their advertised URL
	// so merged traces attribute spans to the right process.
	ServiceName string

	// ProgressInterval is the instruction cadence of the per-job live
	// progress probe (default cpu.DefaultProgressInterval).
	ProgressInterval int

	// ProgressPoll is how often GET /v1/jobs/{id}/events samples a
	// running job's progress slot (default 150ms).
	ProgressPoll time.Duration

	// DataDir enables durability. When set, accepted jobs are recorded
	// in a write-ahead log under this directory before the submitter
	// sees 202, finished results are retained in a warehouse keyed by
	// canonical spec hash (served at GET /v1/runs), and a restart
	// replays the log: every accepted-but-unfinished job is re-enqueued.
	// Empty = in-memory only (the pre-durability behavior).
	DataDir string

	// Tenants is the tenant registry: API keys, weights, and quotas.
	// nil = single-tenant mode (no authentication; one default tenant
	// owns the whole queue).
	Tenants *tenant.Registry

	// TraceCacheDir backs the recorded-trace artifact store with a
	// directory of content-addressed compressed artifacts, shared across
	// restarts (and across processes pointed at the same directory).
	// Empty keeps the store memory-only: streams are still recorded
	// once per (workload, insts) and replayed by every run, but nothing
	// survives the process.
	TraceCacheDir string

	// ObsScrapeInterval is the cadence at which the embedded
	// time-series store samples the metrics registry (default 5s).
	ObsScrapeInterval time.Duration

	// ObsRetention bounds how far back GET /v1/metrics/query can see
	// (default 15m). Together with the scrape interval it fixes each
	// series' ring size.
	ObsRetention time.Duration

	// Alerts is the validated SLO alert rule set (from
	// tsdb.LoadRules). nil disables alert evaluation; GET /v1/alerts
	// then reports alerting disabled.
	Alerts *tsdb.RuleSet

	// SSEKeepalive is the cadence of ": ping" comment frames on
	// GET /v1/jobs/{id}/events streams, keeping idle proxies from
	// reaping slow jobs' streams (default 15s).
	SSEKeepalive time.Duration

	// FlightCap bounds retained job flight records in the durable
	// store (default 1024). Only meaningful with DataDir set.
	FlightCap int
}

// Validate rejects configurations the server cannot honor. New calls
// it; it is exported for callers that assemble configs from flags and
// want the error before constructing anything.
func (c Config) Validate() error {
	if c.MaxSweepPoints < 0 {
		return fmt.Errorf("server: MaxSweepPoints must be >= 0 (0 = default %d), got %d",
			defaultMaxSweepPoints, c.MaxSweepPoints)
	}
	if c.MaxSweepPoints > maxSweepPointsCeiling {
		return fmt.Errorf("server: MaxSweepPoints %d exceeds the %d ceiling — expansions that large should be split into multiple sweeps",
			c.MaxSweepPoints, maxSweepPointsCeiling)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultInsts == 0 {
		c.DefaultInsts = 200_000
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 5_000_000
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.RetainedJobs <= 0 {
		c.RetainedJobs = 4096
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = defaultMaxSweepPoints
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.ServiceName == "" {
		c.ServiceName = "lvpd"
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = cpu.DefaultProgressInterval
	}
	if c.ProgressPoll <= 0 {
		c.ProgressPoll = 150 * time.Millisecond
	}
	if c.ObsScrapeInterval <= 0 {
		c.ObsScrapeInterval = 5 * time.Second
	}
	if c.ObsRetention <= 0 {
		c.ObsRetention = 15 * time.Minute
	}
	if c.SSEKeepalive <= 0 {
		c.SSEKeepalive = 15 * time.Second
	}
}

// job is one tracked simulation request: a resolved canonical spec
// plus the response label and per-job timeout.
type job struct {
	id        string
	sim       spec.Sim
	label     string
	timeoutMS int64
	key       string
	tenant    string

	// parent is the submitter's span context, captured from the submit
	// request's traceparent header; the job span joins that trace.
	parent otrace.SpanContext

	// prog is the live progress slot the job's simulations publish
	// into; one slot serves both phases (Clear between them). For
	// multi-context jobs progRows adds one row per hardware context
	// (allocated at submit, so status snapshots need no job lock
	// coordination with the simulation).
	prog     cpu.Progress
	progRows []cpu.Progress

	ctx    context.Context
	cancel context.CancelFunc

	// flight is the job's in-memory black box (bounded event and
	// progress-snapshot rings); dumped to the durable flight store on
	// failure, cancellation, or a firing SLO alert.
	flight flightRing

	mu       sync.Mutex
	state    string
	errMsg   string
	result   *RunResult
	cacheHit bool
	traceID  string // trace the job span recorded under
	phase    string // "baseline" | "run" while running
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// startPhase empties the progress slot and labels the phase the job's
// next simulation belongs to. Called from the job's worker goroutine
// only, between simulations, so clearing cannot race a publisher.
func (j *job) startPhase(phase string) {
	j.prog.Clear()
	for i := range j.progRows {
		j.progRows[i].Clear()
	}
	j.mu.Lock()
	j.phase = phase
	j.mu.Unlock()
	j.flight.note("phase: " + phase)
}

// transition moves the job to state under its lock; it is a no-op once
// the job reached a terminal state (done/failed/canceled win over later
// worker-side transitions).
func (j *job) transition(state, errMsg string, result *RunResult) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	switch state {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCanceled:
		j.finished = time.Now()
		close(j.done)
	}
	msg := "state: " + state
	if errMsg != "" {
		msg += " (" + errMsg + ")"
	}
	j.flight.note(msg)
	return true
}

// status snapshots the job for JSON rendering.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		SpecHash: j.key,
		Tenant:   j.tenant,
		Error:    j.errMsg,
		Result:   j.result,
		CacheHit: j.cacheHit,
		TraceID:  j.traceID,
		Created:  j.created,
	}
	if j.state == StateRunning && j.phase != "" {
		if snap, ok := j.prog.Load(); ok {
			total := j.sim.Workload.Insts
			if n := len(j.progRows); n > 0 {
				total *= uint64(n) // aggregate slot counts all contexts
			}
			pv := NewProgressView(j.phase, total, snap)
			if len(j.progRows) > 0 {
				names := j.sim.ContextWorkloads()
				for i := range j.progRows {
					rs, ok := j.progRows[i].Load()
					if !ok {
						continue
					}
					cp := ContextProgress{
						Context:      i,
						Workload:     names[i],
						Instructions: rs.Instructions,
						Cycles:       rs.Cycles,
					}
					if j.sim.Workload.Insts > 0 {
						cp.Pct = 100 * float64(rs.Instructions) / float64(j.sim.Workload.Insts)
					}
					pv.PerContext = append(pv.PerContext, cp)
				}
			}
			st.Progress = &pv
		}
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// summary snapshots the job as one row of GET /v1/jobs.
func (j *job) summary() JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	sum := JobSummary{
		ID:        j.id,
		State:     j.state,
		SpecHash:  j.key,
		Tenant:    j.tenant,
		Workload:  j.sim.Workload.Name,
		Predictor: j.label,
		CacheHit:  j.cacheHit,
		Created:   j.created,
	}
	if !j.finished.IsZero() {
		t := j.finished
		sum.Finished = &t
	}
	return sum
}

// simKey identifies an expt.Context: contexts cache baselines, so one
// is kept per (instruction budget, seed) combination.
type simKey struct {
	insts uint64
	seed  uint64
}

// Server is the simulation-as-a-service daemon core: handlers, queue,
// worker pool, caches, and metrics. Create with New, start the workers
// with Start, mount Handler on an http.Server, and stop with Shutdown.
type Server struct {
	cfg    Config
	log    *slog.Logger
	reg    *obs.Registry
	tracer *otrace.Recorder
	mux    *http.ServeMux

	// lifeCtx parents every job context; lifeStop aborts all
	// simulations (used as the shutdown hard stop).
	lifeCtx  context.Context
	lifeStop context.CancelFunc

	// sched replaces the old global FIFO channel: a weighted fair
	// queueing scheduler over per-tenant queues. Workers block in
	// Dequeue; Shutdown closes it.
	sched     *tenant.WFQ
	tenants   *tenant.Registry
	wg        sync.WaitGroup
	accepting atomic.Bool

	// st is the durable store (nil without DataDir). crashed is a test
	// hook: once set, no further WAL or warehouse writes happen, so a
	// subsequent Shutdown leaves the store exactly as a SIGKILL would.
	st      *store.Store
	crashed atomic.Bool

	// The observability plane: the embedded time-series store sampled
	// from the registry by the collector, and the optional SLO alerter.
	// obsWG tracks their loops so Shutdown can stop them (via lifeStop)
	// before the store closes under the flight recorder.
	tsdb      *tsdb.DB
	collector *tsdb.Collector
	alerter   *tsdb.Alerter
	obsWG     sync.WaitGroup

	// traces is the content-addressed recorded-trace store shared by
	// every simulation context: each workload stream is generated at
	// most once per process (or fetched from TraceCacheDir / a
	// coordinator upload) and replayed by all runs that need it.
	traces *trace.ArtifactStore

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // finished-job retention FIFO
	nextID  uint64
	simCtxs map[simKey]*expt.Context

	cache *ResultCache

	// drainEWMA holds the float64 bits of an exponentially weighted
	// moving average of recent job durations, the basis of the
	// Retry-After estimate returned with 429 responses.
	drainEWMA atomic.Uint64

	mAccepted   *obs.Counter
	mDone       *obs.Counter
	mFailed     *obs.Counter
	mCanceled   *obs.Counter
	mRejected   *obs.Counter
	mCacheHits  *obs.Counter
	mCacheMiss  *obs.Counter
	mQueueDepth *obs.Gauge
	mInflight   *obs.Gauge
	mJobDur     *obs.Histogram
	mSimInsts   *obs.Counter
	mThrottled  *obs.Counter
	mAuthFailed *obs.Counter
	mUploads    *obs.Counter
	mWALFsync   *obs.Histogram
	mSSEDropped *obs.Counter

	// Per-tenant counters, keyed by tenant name (registry is immutable,
	// so the maps are built once in New and read without locking).
	mTenantDispatched map[string]*obs.Counter
	mTenantAccepted   map[string]*obs.Counter
	mTenantRejected   map[string]*obs.Counter
	mTenantSimInsts   map[string]*obs.Counter
}

// New builds a server from cfg, rejecting invalid configurations. Call
// Start before serving requests. With DataDir set, New also opens the
// WAL, replays it, and re-enqueues every job that was accepted but not
// finished when the previous process died.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = tenant.Single()
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		reg:     reg,
		tracer:  otrace.NewRecorder(cfg.ServiceName, 0),
		mux:     http.NewServeMux(),
		sched:   tenant.NewWFQ(),
		tenants: tenants,
		jobs:    make(map[string]*job),
		simCtxs: make(map[simKey]*expt.Context),
		cache:   NewResultCache(cfg.CacheSize),

		mAccepted:   reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "accepted"),
		mDone:       reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "done"),
		mFailed:     reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "failed"),
		mCanceled:   reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "canceled"),
		mRejected:   reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "rejected"),
		mCacheHits:  reg.Counter("lvpd_cache_hits_total", "Jobs answered from the result cache."),
		mCacheMiss:  reg.Counter("lvpd_cache_misses_total", "Jobs that required simulation."),
		mQueueDepth: reg.Gauge("lvpd_queue_depth", "Accepted jobs waiting for a worker."),
		mInflight:   reg.Gauge("lvpd_jobs_inflight", "Jobs currently simulating."),
		mJobDur:     reg.Histogram("lvpd_job_duration_seconds", "Wall time from dequeue to completion.", nil),
		mSimInsts:   reg.Counter("lvpd_sim_instructions_total", "Instructions simulated (rate gives sim instructions/sec)."),
		mThrottled:  reg.Counter("lvpd_jobs_total", "Jobs by terminal or entry state.", "state", "throttled"),
		mAuthFailed: reg.Counter("lvpd_auth_failures_total", "Requests rejected for a missing or unknown API key."),
		mUploads:    reg.Counter("lvpd_trace_uploads_total", "External trace files accepted via POST /v1/workloads."),
		mWALFsync:   reg.Histogram("lvpd_wal_fsync_seconds", "Group-commit fsync latency on the WAL append path.", fsyncBuckets),
		mSSEDropped: reg.Counter("lvpd_sse_streams_dropped_total", "Job event streams whose client disconnected before the terminal event."),

		mTenantDispatched: make(map[string]*obs.Counter),
		mTenantAccepted:   make(map[string]*obs.Counter),
		mTenantRejected:   make(map[string]*obs.Counter),
		mTenantSimInsts:   make(map[string]*obs.Counter),
	}
	for _, tn := range tenants.Tenants() {
		name := tn.Name
		s.mTenantAccepted[name] = reg.Counter("lvpd_tenant_jobs_total", "Per-tenant jobs by state.", "tenant", name, "state", "accepted")
		s.mTenantRejected[name] = reg.Counter("lvpd_tenant_jobs_total", "Per-tenant jobs by state.", "tenant", name, "state", "rejected")
		s.mTenantDispatched[name] = reg.Counter("lvpd_tenant_jobs_total", "Per-tenant jobs by state.", "tenant", name, "state", "dispatched")
		s.mTenantSimInsts[name] = reg.Counter("lvpd_tenant_sim_instructions_total", "Instructions simulated on behalf of the tenant.", "tenant", name)
		reg.GaugeFunc("lvpd_tenant_queue_depth",
			"Accepted jobs waiting for a worker, per tenant.",
			func() float64 { return float64(s.sched.TenantLen(name)) },
			"tenant", name)
		s.registerTenantStarvationGauges(name)
	}
	traces, err := trace.NewArtifactStore(cfg.TraceCacheDir, 0)
	if err != nil {
		return nil, err
	}
	traces.SetLogger(s.log)
	s.traces = traces
	// Uploaded external traces persisted by a previous process register
	// their names again, so specs referencing "ext:<hash>" keep
	// validating across restarts.
	if n, err := traces.RehydrateExternal(); err != nil {
		s.log.Warn("scanning trace cache for external workloads failed", "err", err)
	} else if n > 0 {
		s.log.Info("external workloads rehydrated from trace cache", "count", n)
	}
	// Artifact-store counters are snapshots of the store's own stats,
	// rendered as counters at scrape time (the store already counts
	// under its lock; mirroring into obs counters would double-count
	// retries).
	reg.CounterFunc("lvpd_trace_artifact_hits_total",
		"Runs served from the recorded-trace artifact cache, by source.",
		func() float64 { return float64(s.traces.Stats().MemoryHits) },
		"source", "memory")
	reg.CounterFunc("lvpd_trace_artifact_hits_total",
		"Runs served from the recorded-trace artifact cache, by source.",
		func() float64 { return float64(s.traces.Stats().DiskHits) },
		"source", "disk")
	reg.CounterFunc("lvpd_trace_artifact_generated_total",
		"Workload streams generated live (artifact cache misses).",
		func() float64 { return float64(s.traces.Stats().Generated) })
	reg.CounterFunc("lvpd_trace_artifact_received_total",
		"Trace artifacts installed via PUT /v1/traces (coordinator pre-shipping).",
		func() float64 { return float64(s.traces.Stats().Received) })
	reg.CounterFunc("lvpd_trace_artifact_corrupt_total",
		"Disk cache artifacts that failed to decode and were regenerated or skipped.",
		func() float64 { return float64(s.traces.Stats().CorruptRegens) })
	// Derived throughput: simulated instructions per wall-clock second
	// spent simulating, in millions. Computed at scrape time from the
	// instruction counter and the job-duration histogram sum, so it
	// needs no extra bookkeeping on the hot path.
	reg.GaugeFunc("lvpd_sim_mips",
		"Simulator throughput: simulated instructions per second of job wall time, in millions.",
		func() float64 {
			secs := s.mJobDur.Sum()
			if secs <= 0 {
				return 0
			}
			return float64(s.mSimInsts.Value()) / 1e6 / secs
		})
	s.lifeCtx, s.lifeStop = context.WithCancel(context.Background())
	s.routes()
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{
			WAL:       store.WALOptions{FsyncObserver: s.mWALFsync.Observe},
			FlightCap: cfg.FlightCap,
		})
		if err != nil {
			return nil, err
		}
		s.st = st
		if err := s.replay(); err != nil {
			st.Close()
			return nil, err
		}
	}
	s.initObs()
	return s, nil
}

// Registry exposes the metrics registry (for tests and embedding).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the span recorder (for tests and for coordinators
// that merge worker traces into their own).
func (s *Server) Tracer() *otrace.Recorder { return s.tracer }

// Start launches the worker pool. Workers pull from the WFQ scheduler,
// which hands out the queued job with the smallest virtual finish tag —
// tenants with work queued are served in proportion to their weights.
func (s *Server) Start() {
	s.accepting.Store(true)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				p, ok := s.sched.Dequeue()
				if !ok {
					return
				}
				j := p.(*job)
				s.mQueueDepth.Add(-1)
				if c := s.mTenantDispatched[j.tenant]; c != nil {
					c.Inc()
				}
				s.runJob(j)
			}
		}()
	}
	s.startObs()
}

// Shutdown drains the service: no new submissions are accepted, queued
// and running jobs are given until ctx's deadline to finish, then all
// remaining simulations are cancelled. Blocks until the workers exit,
// then closes the durable store (unless a simulated crash froze it).
func (s *Server) Shutdown(ctx context.Context) error {
	s.accepting.Store(false)
	s.sched.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.log.Warn("shutdown deadline reached; cancelling in-flight jobs")
		s.lifeStop()
		<-done
		err = ctx.Err()
	}
	// The workers are drained; stop the observability loops (they run
	// on lifeCtx) and wait them out before the store closes under the
	// flight recorder.
	s.lifeStop()
	s.obsWG.Wait()
	if s.st != nil && !s.crashed.Load() {
		if cerr := s.st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Handler returns the HTTP handler tree with request logging, trace
// propagation, and tenant authentication applied. The trace middleware
// is outermost so a submit request's traceparent header is on the
// context before any handler (or log line) runs; auth is innermost so
// failures still show up in the request log.
func (s *Server) Handler() http.Handler {
	return s.tracer.Middleware(s.logMiddleware(s.authMiddleware(s.mux)))
}

// authMiddleware resolves the request's tenant and stores it in the
// context. Only the /v1/ API surface requires a key; health, metrics,
// and debug endpoints stay open (they carry no tenant data and probes
// have no credentials). In single-tenant mode every request maps to
// the default tenant. A Proxy-flagged tenant (the coordinator's worker
// credential) may attribute its work to another tenant via the
// X-Lvpd-Tenant header.
func (s *Server) authMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		key := tenant.KeyFromAuth(r.Header.Get("Authorization"), r.Header.Get("X-API-Key"))
		tn, ok := s.tenants.Authenticate(key)
		if !ok {
			s.mAuthFailed.Inc()
			writeError(w, http.StatusUnauthorized, "missing or unknown API key")
			return
		}
		if name := r.Header.Get("X-Lvpd-Tenant"); name != "" && name != tn.Name {
			if !tn.Proxy {
				writeError(w, http.StatusForbidden, "tenant is not allowed to attribute work to others")
				return
			}
			attributed, ok := s.tenants.ByName(name)
			if !ok {
				writeError(w, http.StatusForbidden, "unknown tenant in X-Lvpd-Tenant")
				return
			}
			tn = attributed
		}
		next.ServeHTTP(w, r.WithContext(tenant.NewContext(r.Context(), tn)))
	})
}

// requestTenant resolves the tenant the auth middleware attached;
// requests that bypass Handler (tests hitting s.mux directly) fall
// back to the default tenant.
func (s *Server) requestTenant(r *http.Request) *tenant.Tenant {
	if tn := tenant.FromContext(r.Context()); tn != nil {
		return tn
	}
	return s.tenants.Default()
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/flightrecord", s.handleFlightRecord)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	s.mux.HandleFunc("GET /v1/runs/diff", s.handleDiffRuns)
	s.mux.HandleFunc("GET /v1/runs/{hash}", s.handleGetRun)
	s.mux.HandleFunc("GET /v1/traces/{hash}", s.handleGetTrace)
	s.mux.HandleFunc("PUT /v1/traces/{hash}", s.handlePutTrace)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/workloads", s.handleUploadWorkload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/metrics/query", s.handleMetricsQuery)
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	s.mux.Handle("GET /debug/traces", s.tracer.IndexHandler())
	s.mux.Handle("GET /debug/traces/{id}", s.tracer.ExportHandler())
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streams (which flush per
// event) survive the logging wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.reg.Counter("lvpd_http_requests_total", "HTTP requests by status code.",
			"code", fmt.Sprintf("%d", rec.code)).Inc()
		s.observeRequest(r, rec.code, time.Since(start).Seconds())
		s.log.InfoContext(r.Context(), "http",
			"method", r.Method,
			"path", r.URL.Path,
			"code", rec.code,
			"dur_ms", time.Since(start).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(marshalError(msg))
	w.Write([]byte("\n"))
}

// specDefaults exposes the server's request defaults as spec defaults.
func (s *Server) specDefaults() spec.Defaults {
	var maxInsts uint64
	if s.cfg.MaxInsts > 0 {
		maxInsts = uint64(s.cfg.MaxInsts)
	}
	return spec.Defaults{Insts: s.cfg.DefaultInsts, MaxInsts: maxInsts, Seed: DefaultSeed}
}

// handleSubmit implements POST /v1/jobs: resolve the request into its
// canonical spec, answer from cache, or enqueue with backpressure
// (429 + Retry-After when the queue is full — the service sheds load
// instead of buffering unboundedly).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	sim, err := req.ResolveSpec(s.specDefaults())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	tn := s.requestTenant(r)
	j, code, retryAfter := s.admit(tn, sim, req.Label(sim), req.TimeoutMS, otrace.ContextSpanContext(r.Context()))
	switch code {
	case http.StatusOK, http.StatusAccepted:
		writeJSON(w, code, j.status())
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, code, "tenant queue share or instruction budget exhausted; retry later")
	case http.StatusInternalServerError:
		writeError(w, code, "durable store write failed")
	default:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	}
}

// noteJobDuration folds one finished job's wall time into the drain
// EWMA (alpha 0.25: a few jobs of history, responsive to phase
// changes).
func (s *Server) noteJobDuration(secs float64) {
	for {
		old := s.drainEWMA.Load()
		prev := math.Float64frombits(old)
		next := secs
		if prev > 0 {
			next = 0.75*prev + 0.25*secs
		}
		if s.drainEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a shed client should wait for
// queue space: the tenant's own backlog divided by the drain rate of
// the worker share its weight entitles it to (workers draining jobs of
// EWMA duration each). Single jobs and sweep points shed by a full
// queue both return this same estimate.
func (s *Server) retryAfterSeconds(tn *tenant.Tenant) int {
	depth := s.sched.TenantLen(tn.Name)
	workers := s.cfg.Workers
	if !s.tenants.Open() {
		// The tenant only contends for its weight share of the pool.
		share := float64(tn.EffectiveWeight()) / float64(s.tenants.TotalWeight())
		workers = int(float64(s.cfg.Workers)*share + 0.5)
		if workers < 1 {
			workers = 1
		}
	}
	return retryAfterEstimate(depth, workers, math.Float64frombits(s.drainEWMA.Load()))
}

// retryAfterEstimate is the pure Retry-After formula: ceil((depth+1) ×
// ewmaSecs / workers), clamped to [1, 60]. With no completed jobs yet
// (ewmaSecs 0) there is no evidence the queue drains slowly, so the
// historical 1-second hint stands.
func retryAfterEstimate(depth, workers int, ewmaSecs float64) int {
	if workers <= 0 {
		workers = 1
	}
	if ewmaSecs <= 0 || depth < 0 {
		return 1
	}
	eta := int(math.Ceil(float64(depth+1) * ewmaSecs / float64(workers)))
	if eta < 1 {
		return 1
	}
	if eta > 60 {
		return 60
	}
	return eta
}

// admit registers a job for a resolved spec and routes it: answered
// from the result cache or warehouse (StatusOK), enqueued
// (StatusAccepted), or shed (StatusTooManyRequests with a Retry-After
// hint / StatusServiceUnavailable / StatusInternalServerError, with
// the job unregistered again). Shared by POST /v1/jobs and POST
// /v1/sweeps. parent is the submitter's span context (zero when the
// request carried no traceparent); the job's spans join its trace.
func (s *Server) admit(tn *tenant.Tenant, sim spec.Sim, label string, timeoutMS int64, parent otrace.SpanContext) (*job, int, int) {
	j := s.newJob(tn, sim, label, timeoutMS, parent)

	// Cache: equivalent requests are answered without re-simulating.
	if res, ok := s.lookupResult(j.key); ok {
		s.mCacheHits.Inc()
		j.mu.Lock()
		j.cacheHit = true
		j.mu.Unlock()
		j.transition(StateDone, "", &res)
		s.mDone.Inc()
		return j, http.StatusOK, 0
	}
	s.mCacheMiss.Inc()

	// Admission budget: a tenant over its insts/sec rate is shed before
	// anything is queued or persisted.
	if ra := s.tenants.ChargeInsts(tn, sim.Workload.Insts, time.Now()); ra > 0 {
		s.dropJob(j)
		s.mThrottled.Inc()
		if c := s.mTenantRejected[tn.Name]; c != nil {
			c.Inc()
		}
		return j, http.StatusTooManyRequests, ra
	}

	if !s.accepting.Load() {
		s.dropJob(j)
		return j, http.StatusServiceUnavailable, 0
	}
	err := s.sched.Enqueue(tn, j, float64(sim.Workload.Insts), s.tenants.QueueCap(tn, s.cfg.QueueDepth))
	switch {
	case errors.Is(err, tenant.ErrTenantFull):
		s.dropJob(j)
		s.mRejected.Inc()
		if c := s.mTenantRejected[tn.Name]; c != nil {
			c.Inc()
		}
		return j, http.StatusTooManyRequests, s.retryAfterSeconds(tn)
	case err != nil:
		s.dropJob(j)
		return j, http.StatusServiceUnavailable, 0
	}

	s.mQueueDepth.Add(1)

	// Durability: the accepted event must be on disk before the
	// submitter sees 202 — an accepted job survives any crash after
	// this point. On a write failure the job is pulled back out of the
	// queue (unless a worker already grabbed it, in which case it runs
	// with a cancelled context and settles as canceled).
	if perr := s.persistAccepted(j); perr != nil {
		s.log.Error("wal append failed; shedding job", "id", j.id, "err", perr)
		if s.sched.Remove(func(p any) bool { return p == j }) {
			s.mQueueDepth.Add(-1)
		}
		s.dropJob(j)
		return j, http.StatusInternalServerError, 0
	}
	s.mAccepted.Inc()
	if c := s.mTenantAccepted[tn.Name]; c != nil {
		c.Inc()
	}
	return j, http.StatusAccepted, 0
}

// lookupResult consults the in-memory LRU, then the warehouse (which
// retains every finished run beyond the LRU's capacity), promoting
// warehouse hits back into the LRU.
func (s *Server) lookupResult(key string) (RunResult, bool) {
	if res, ok := s.cache.Get(key); ok {
		return res, true
	}
	if s.st == nil {
		return RunResult{}, false
	}
	rec, ok := s.st.Warehouse().Get(key)
	if !ok {
		return RunResult{}, false
	}
	var res RunResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return RunResult{}, false
	}
	s.cache.Put(key, res)
	return res, true
}

// newJob registers a fresh queued job.
func (s *Server) newJob(tn *tenant.Tenant, sim spec.Sim, label string, timeoutMS int64, parent otrace.SpanContext) *job {
	ctx, cancel := context.WithCancel(s.lifeCtx)
	s.mu.Lock()
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.nextID),
		sim:       sim,
		label:     label,
		timeoutMS: timeoutMS,
		tenant:    tn.Name,
		parent:    parent,
		key:       sim.CanonicalHash(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	if n := sim.Machine.NumContexts(); n > 1 {
		j.progRows = make([]cpu.Progress, n)
	}
	j.flight.note("accepted")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Forget the oldest retained jobs beyond the cap; skip any still
	// queued or running (they are bounded by QueueDepth + Workers).
	for len(s.order) > s.cfg.RetainedJobs {
		old := s.jobs[s.order[0]]
		if old != nil {
			old.mu.Lock()
			terminal := old.state == StateDone || old.state == StateFailed || old.state == StateCanceled
			old.mu.Unlock()
			if !terminal {
				break
			}
			delete(s.jobs, old.id)
		}
		s.order = s.order[1:]
	}
	s.mu.Unlock()
	return j
}

// dropJob unregisters a job that never entered the queue.
func (s *Server) dropJob(j *job) {
	j.cancel()
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

// handleListJobs implements GET /v1/jobs: a paginated listing of
// retained jobs, most recent first, as compact summaries (state + spec
// hash, no result payloads). Coordinators and operators use it to
// inspect a worker's backlog; ?limit= (default 50, max 500) and
// ?offset= page through it, ?state= and ?tenant= filter it (offset
// and total apply to the filtered listing).
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	limit, offset := 50, 0
	stateFilter := r.URL.Query().Get("state")
	switch stateFilter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateRejected:
	default:
		writeError(w, http.StatusBadRequest, "state must be one of queued, running, done, failed, canceled, rejected")
		return
	}
	tenantFilter := r.URL.Query().Get("tenant")
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 500 {
			writeError(w, http.StatusBadRequest, "limit must be an integer in [1, 500]")
			return
		}
		limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
			return
		}
		offset = n
	}

	s.mu.Lock()
	// s.order is oldest-first and may name jobs dropped before they were
	// ever queued; walk it backwards, skipping the gaps.
	live := make([]*job, 0, len(s.jobs))
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if j == nil {
			continue
		}
		if tenantFilter != "" && j.tenant != tenantFilter {
			continue
		}
		if stateFilter != "" {
			j.mu.Lock()
			match := j.state == stateFilter
			j.mu.Unlock()
			if !match {
				continue
			}
		}
		live = append(live, j)
	}
	list := JobList{Total: len(live), Offset: offset, Limit: limit, Jobs: []JobSummary{}}
	for i := offset; i < len(live) && i < offset+limit; i++ {
		list.Jobs = append(list.Jobs, live[i].summary())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancelJob implements DELETE /v1/jobs/{id}: cancel a queued or
// running job. The worker observes the cancelled context within one
// check interval and records the job as canceled.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	// A still-queued job can be settled immediately; a running one is
	// settled by its worker. Either way the cancellation is durable:
	// a canceled job must not resurrect on restart.
	if j.transition(StateCanceled, "canceled by client", nil) {
		s.mCanceled.Inc()
		s.persistTerminal(j, StateCanceled, "canceled by client", nil)
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"workloads": trace.Names()}
	if ext := trace.ExternalNames(); len(ext) > 0 {
		resp["external"] = ext
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{
		Status:       "ok",
		QueueDepth:   s.sched.Len(),
		JobsInflight: s.mInflight.Value(),
		CacheEntries: s.cache.Len(),
	}
	if secs := s.mJobDur.Sum(); secs > 0 {
		h.SimMIPS = float64(s.mSimInsts.Value()) / 1e6 / secs
	}
	writeJSON(w, http.StatusOK, h)
}

// handleReadyz implements GET /readyz, the readiness half of the
// health pair: 200 while the server accepts submissions, 503 once a
// drain has begun. Load balancers and cluster coordinators use it to
// stop routing work to a draining process; /healthz stays the liveness
// probe (and keeps its informational payload).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.accepting.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// simCtx returns the shared expt.Context for an (insts, seed)
// combination; contexts cache baseline runs and deduplicate concurrent
// baseline requests per workload.
func (s *Server) simCtx(insts, seed uint64) *expt.Context {
	key := simKey{insts: insts, seed: seed}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.simCtxs[key]; ok {
		return c
	}
	c, err := expt.NewContextErr(expt.Options{Insts: insts, Seed: seed, Workloads: nil, Traces: s.traces})
	if err != nil {
		// Unreachable: an empty workload list cannot fail.
		panic(err)
	}
	s.simCtxs[key] = c
	return c
}

// runJob executes one dequeued job: baseline (deduplicated per
// workload × machine), configured run on the spec's machine, cache
// fill, and metrics. Engines come from the spec registry — the only
// place predictor families are interpreted.
func (s *Server) runJob(j *job) {
	if !j.transition(StateRunning, "", nil) {
		return // canceled while queued
	}
	s.mInflight.Add(1)
	start := time.Now()
	defer func() {
		s.mInflight.Add(-1)
		secs := time.Since(start).Seconds()
		s.mJobDur.Observe(secs)
		s.noteJobDuration(secs)
	}()

	timeout := s.cfg.JobTimeout
	if j.timeoutMS > 0 {
		timeout = time.Duration(j.timeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	// The job span joins the submitter's trace when the submit request
	// carried a traceparent, and roots a fresh trace otherwise; the
	// baseline and configured-run phases become child spans.
	ctx = otrace.ContextWithRemote(ctx, j.parent)
	ctx, span := s.tracer.StartSpan(ctx, "job",
		otrace.String("job_id", j.id),
		otrace.String("workload", j.sim.Workload.Name),
		otrace.String("predictor", j.label),
		otrace.String("spec", j.key),
	)
	defer func() {
		span.SetAttr("state", j.status().State)
		span.Finish()
	}()
	j.mu.Lock()
	j.traceID = span.TraceID
	j.mu.Unlock()

	sctx := s.simCtx(j.sim.Workload.Insts, j.sim.Run.Seed)
	if j.sim.Machine.NumContexts() > 1 {
		s.runSMTJob(j, ctx, sctx, start)
		return
	}

	w, _ := trace.ByName(j.sim.Workload.Name) // validated at submit

	baseCached := sctx.HasBaselineMachine(w.Name, j.sim.Machine)
	j.startPhase("baseline")
	bctx, bspan := s.tracer.StartSpan(ctx, "baseline",
		otrace.String("cached", strconv.FormatBool(baseCached)))
	base := sctx.BaselineMachineProgressCtx(bctx, w, j.sim.Machine, &j.prog, s.cfg.ProgressInterval)
	bspan.Finish()
	if base.Aborted {
		s.settleAborted(j, ctx)
		return
	}
	var simInsts uint64
	if !baseCached {
		s.mSimInsts.Add(base.Instructions)
		simInsts += base.Instructions
	}
	defer func() {
		if c := s.mTenantSimInsts[j.tenant]; c != nil && simInsts > 0 {
			c.Add(simInsts)
		}
	}()

	var res RunResult
	if j.sim.Predictor.Family == spec.FamilyNone {
		res = NewRunResult(base, base, nil)
	} else {
		eng, err := spec.NewEngine(j.sim.Predictor, j.sim.Workload.Insts, sctx.EngineSeed(w))
		if err != nil {
			// Unreachable: the spec was validated at submit.
			if j.transition(StateFailed, err.Error(), nil) {
				s.mFailed.Inc()
				s.persistTerminal(j, StateFailed, err.Error(), nil)
			}
			return
		}
		j.startPhase("run")
		rctx, rspan := s.tracer.StartSpan(ctx, "run")
		run := sctx.RunEngineCfgProgressCtx(rctx, w, j.label, eng, j.sim.Machine.Config(), &j.prog, s.cfg.ProgressInterval)
		rspan.Finish()
		s.mSimInsts.Add(run.Instructions)
		simInsts += run.Instructions
		if run.Aborted {
			s.settleAborted(j, ctx)
			return
		}
		res = NewRunResult(run, base, CompositeFromEngine(eng))
	}

	// The run's config label tracks the engine ("base" for the none
	// family); the response should echo the requested predictor.
	res.Predictor = j.label
	if res.StorageKB == 0 {
		res.StorageKB = spec.StorageKB(j.sim.Predictor)
	}

	res.SimInstructions = simInsts
	if secs := time.Since(start).Seconds(); secs > 0 {
		res.SimMIPS = float64(simInsts) / 1e6 / secs
	}

	s.cache.Put(j.key, res)
	if j.transition(StateDone, "", &res) {
		s.mDone.Inc()
		s.persistTerminal(j, StateDone, "", &res)
		s.log.InfoContext(ctx, "job done", "id", j.id, "workload", j.sim.Workload.Name,
			"predictor", j.label, "spec", j.key, "speedup_pct", res.SpeedupPct,
			"dur_ms", time.Since(start).Milliseconds())
	}
}

// runSMTJob executes a multi-context job: SMT baseline (deduplicated
// per mix × machine), configured SMT run, cache fill, and metrics —
// the multi-context twin of runJob's tail. The job's per-context
// progress rows receive each context's live snapshot alongside the
// machine-wide aggregate in j.prog.
func (s *Server) runSMTJob(j *job, ctx context.Context, sctx *expt.Context, start time.Time) {
	rows := make([]*cpu.Progress, len(j.progRows))
	for i := range j.progRows {
		rows[i] = &j.progRows[i]
	}

	baseCached := sctx.HasSMTBaseline(j.sim)
	j.startPhase("baseline")
	bctx, bspan := s.tracer.StartSpan(ctx, "baseline",
		otrace.String("cached", strconv.FormatBool(baseCached)))
	base := sctx.SMTBaselineProgressCtx(bctx, j.sim, &j.prog, rows, s.cfg.ProgressInterval)
	bspan.Finish()
	if base.Aborted() {
		s.settleAborted(j, ctx)
		return
	}
	var simInsts uint64
	if !baseCached {
		s.mSimInsts.Add(base.Merged.Instructions)
		simInsts += base.Merged.Instructions
	}
	defer func() {
		if c := s.mTenantSimInsts[j.tenant]; c != nil && simInsts > 0 {
			c.Add(simInsts)
		}
	}()

	var res RunResult
	if j.sim.Predictor.Family == spec.FamilyNone {
		res = NewSMTRunResult(base, base, j.sim.ContextStreams(), nil)
	} else {
		eng, err := spec.NewEngine(j.sim.Predictor, j.sim.Workload.Insts, sctx.EngineSeedLabel(j.sim.WorkloadLabel()))
		if err != nil {
			// Unreachable: the spec was validated at submit.
			if j.transition(StateFailed, err.Error(), nil) {
				s.mFailed.Inc()
				s.persistTerminal(j, StateFailed, err.Error(), nil)
			}
			return
		}
		j.startPhase("run")
		rctx, rspan := s.tracer.StartSpan(ctx, "run")
		run := sctx.RunSMTProgressCtx(rctx, j.sim, j.label, eng, &j.prog, rows, s.cfg.ProgressInterval)
		rspan.Finish()
		s.mSimInsts.Add(run.Merged.Instructions)
		simInsts += run.Merged.Instructions
		if run.Aborted() {
			s.settleAborted(j, ctx)
			return
		}
		res = NewSMTRunResult(run, base, j.sim.ContextStreams(), CompositeFromEngine(eng))
	}

	res.Predictor = j.label
	if res.StorageKB == 0 {
		res.StorageKB = spec.StorageKB(j.sim.Predictor)
	}
	res.SimInstructions = simInsts
	if secs := time.Since(start).Seconds(); secs > 0 {
		res.SimMIPS = float64(simInsts) / 1e6 / secs
	}

	s.cache.Put(j.key, res)
	if j.transition(StateDone, "", &res) {
		s.mDone.Inc()
		s.persistTerminal(j, StateDone, "", &res)
		s.log.InfoContext(ctx, "job done", "id", j.id, "workload", res.Workload,
			"predictor", j.label, "spec", j.key, "contexts", res.Contexts,
			"speedup_pct", res.SpeedupPct, "dur_ms", time.Since(start).Milliseconds())
	}
}

// settleAborted records why a job's simulation stopped early. A
// deadline abort is terminal (persisted, never replayed); a
// cancellation during shutdown is NOT persisted unless the client
// asked for it — the accepted event stays unfinished in the WAL and
// the job is re-enqueued on restart.
func (s *Server) settleAborted(j *job, ctx context.Context) {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		if j.transition(StateFailed, "job deadline exceeded", nil) {
			s.mFailed.Inc()
			s.persistTerminal(j, StateFailed, "job deadline exceeded", nil)
		}
	default:
		if j.transition(StateCanceled, "canceled", nil) {
			s.mCanceled.Inc()
		}
	}
	s.log.InfoContext(ctx, "job aborted", "id", j.id, "reason", ctx.Err())
}
