package server

import (
	"context"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// fsyncBuckets resolve sub-millisecond group-commit fsyncs; the default
// latency buckets start too coarse for a local disk's append path.
var fsyncBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1,
}

// initObs builds the embedded time-series layer: the ring-buffer DB,
// the self-scrape collector (which also drives flight-recorder
// sampling), and — when an alert rule set is configured — the SLO
// alerter whose firing transitions dump running jobs' black boxes.
// Called from New after the durable store opens.
func (s *Server) initObs() {
	s.tsdb = tsdb.New(tsdb.Options{
		ScrapeInterval: s.cfg.ObsScrapeInterval,
		Retention:      s.cfg.ObsRetention,
	})
	s.collector = &tsdb.Collector{
		DB:       s.tsdb,
		Interval: s.cfg.ObsScrapeInterval,
		Targets: func() []tsdb.Target {
			return []tsdb.Target{tsdb.RegistryTarget("self", s.reg)}
		},
		OnScrape: s.sampleFlights,
	}
	// The tsdb watches itself: series count and cardinality-cap drops
	// are regular metrics, so a label blowup shows up in the very store
	// it is blowing up.
	s.reg.GaugeFunc("lvpd_tsdb_series",
		"Time series held by the embedded metrics store.",
		func() float64 { return float64(s.tsdb.SeriesCount()) })
	s.reg.CounterFunc("lvpd_tsdb_dropped_series_total",
		"Series rejected by the embedded store's cardinality cap.",
		func() float64 { return float64(s.tsdb.DroppedSeries()) })

	if s.cfg.Alerts != nil {
		s.alerter = tsdb.NewAlerter(s.tsdb, s.cfg.Alerts, s.log, s.cfg.ServiceName)
		s.alerter.OnTransition = s.onAlertTransition
	}
	// Registered unconditionally so the exposition is stable with and
	// without an -alerts-file.
	s.reg.GaugeFunc("lvpd_alerts_firing",
		"SLO alert rules currently firing (0 when alerting is disabled).",
		func() float64 {
			if s.alerter == nil {
				return 0
			}
			return float64(s.alerter.FiringCount())
		})
}

// startObs launches the collector and alerter loops on the server's
// lifecycle context. Shutdown stops them via lifeStop and waits on
// obsWG before closing the store under them.
func (s *Server) startObs() {
	if s.collector != nil {
		s.obsWG.Add(1)
		go func() {
			defer s.obsWG.Done()
			s.collector.Run(s.lifeCtx)
		}()
	}
	if s.alerter != nil {
		s.obsWG.Add(1)
		go func() {
			defer s.obsWG.Done()
			s.alerter.Run(s.lifeCtx)
		}()
	}
}

// onAlertTransition is the alerter's in-process hook: when a rule
// fires, every running job's black box is dumped with the rule as
// trigger — the flight store then holds the state of the fleet's work
// at the moment the SLO broke, even if those jobs later finish clean.
func (s *Server) onAlertTransition(n tsdb.Notification) {
	if n.State != tsdb.AlertFiring {
		return
	}
	for _, j := range s.runningJobs() {
		j.flight.note("alert fired: " + n.Rule)
		s.dumpFlight(j, "alert:"+n.Rule)
	}
}

// ScrapeObs runs one observability collection pass with an explicit
// clock — the deterministic twin of the collector's ticker, for tests.
func (s *Server) ScrapeObs(now time.Time) {
	s.collector.ScrapeOnce(context.Background(), now)
}

// EvaluateAlerts runs one alert evaluation pass with an explicit
// clock. No-op without configured rules.
func (s *Server) EvaluateAlerts(now time.Time) {
	if s.alerter != nil {
		s.alerter.Evaluate(now)
	}
}

// TSDB exposes the embedded metrics store (for tests and embedding).
func (s *Server) TSDB() *tsdb.DB { return s.tsdb }

// handleMetricsQuery implements GET /v1/metrics/query over the
// embedded store.
func (s *Server) handleMetricsQuery(w http.ResponseWriter, r *http.Request) {
	tsdb.HandleQuery(s.tsdb, w, r, nil)
}

// handleAlerts implements GET /v1/alerts.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	tsdb.HandleAlerts(s.alerter, w, r)
}

// observeRequest folds one finished HTTP request into the duration
// histogram, labeled by normalized route and status code. The route
// label comes from routeLabel, not the raw path, so job IDs and spec
// hashes cannot blow up the label cardinality.
func (s *Server) observeRequest(r *http.Request, code int, secs float64) {
	s.reg.Histogram("lvpd_http_request_duration_seconds",
		"HTTP request latency by route and status code.", obs.DefBuckets,
		"route", routeLabel(r.URL.Path), "code", httpCodeLabel(code)).Observe(secs)
}

// httpCodeLabel renders the handful of status codes the API produces
// without a per-request fmt allocation.
func httpCodeLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 400:
		return "400"
	case 401:
		return "401"
	case 403:
		return "403"
	case 404:
		return "404"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	default:
		return "other"
	}
}

// routeLabel normalizes a request path to its route pattern, collapsing
// path parameters (job IDs, spec hashes) to placeholders. Hand-written
// rather than read from the mux because the matched pattern is not
// exposed on the request until later Go releases than this module
// targets.
func routeLabel(path string) string {
	switch path {
	case "/v1/jobs", "/v1/sweeps", "/v1/runs", "/v1/runs/diff",
		"/v1/presets", "/v1/workloads", "/v1/alerts", "/v1/metrics/query",
		"/healthz", "/readyz", "/metrics":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/v1/jobs/"):
		switch {
		case strings.HasSuffix(path, "/events"):
			return "/v1/jobs/{id}/events"
		case strings.HasSuffix(path, "/flightrecord"):
			return "/v1/jobs/{id}/flightrecord"
		default:
			return "/v1/jobs/{id}"
		}
	case strings.HasPrefix(path, "/v1/runs/"):
		return "/v1/runs/{hash}"
	case strings.HasPrefix(path, "/v1/traces/"):
		return "/v1/traces/{hash}"
	case strings.HasPrefix(path, "/debug/"):
		return "/debug"
	}
	return "other"
}

// registerTenantStarvationGauges publishes per-tenant queueing health:
// the head-of-line wait (how long the tenant's oldest queued job has
// been waiting) and that wait normalized by the recent average job
// duration. A starvation ratio persistently far above the worker count
// means the tenant's share of the pool is not keeping up.
func (s *Server) registerTenantStarvationGauges(name string) {
	s.reg.GaugeFunc("lvpd_tenant_queue_wait_seconds",
		"Age of the tenant's oldest queued job (head-of-line wait).",
		func() float64 { return s.sched.OldestWait(name, time.Now()).Seconds() },
		"tenant", name)
	s.reg.GaugeFunc("lvpd_tenant_starvation_ratio",
		"Head-of-line wait divided by the recent average job duration.",
		func() float64 {
			ewma := math.Float64frombits(s.drainEWMA.Load())
			if ewma <= 0 {
				return 0
			}
			return s.sched.OldestWait(name, time.Now()).Seconds() / ewma
		},
		"tenant", name)
}
