package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/tenant"
)

// submitAs posts a job with tenant credentials: key authenticates, and
// a non-empty onBehalf adds the X-Lvpd-Tenant attribution header.
func submitAs(t *testing.T, ts *httptest.Server, key, onBehalf string, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set("Authorization", "Bearer "+key)
	}
	if onBehalf != "" {
		hr.Header.Set("X-Lvpd-Tenant", onBehalf)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, st
}

func testRegistry(t *testing.T, tenants ...tenant.Tenant) *tenant.Registry {
	t.Helper()
	r, err := tenant.New(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// newIdleServer builds a server that accepts submissions but never
// starts its workers, so queued jobs stay queued — the deterministic
// setup for queue-order and backpressure assertions.
func newIdleServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	if cfg.DefaultInsts == 0 {
		cfg.DefaultInsts = 20_000
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.accepting.Store(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func TestAuthRequiredAndTenantAttribution(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "alice", APIKey: "ka", Weight: 3},
		tenant.Tenant{Name: "bob", APIKey: "kb"},
		tenant.Tenant{Name: "coordinator", APIKey: "kc", Proxy: true},
	)
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: reg})

	// The /v1 surface requires a key; health stays open for probes.
	if resp, _ := submitAs(t, ts, "", "", JobRequest{Workload: "gcc2k", Insts: 20_000}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless submit status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := submitAs(t, ts, "wrong", "", JobRequest{Workload: "gcc2k", Insts: 20_000}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad-key submit status = %d, want 401", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz without key: %v %d", err, hresp.StatusCode)
	}
	hresp.Body.Close()

	resp, st := submitAs(t, ts, "ka", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 11})
	if resp.StatusCode != http.StatusAccepted || st.Tenant != "alice" {
		t.Fatalf("alice submit: status=%d tenant=%q, want 202/alice", resp.StatusCode, st.Tenant)
	}

	// A proxy tenant attributes work to others; a plain tenant cannot.
	resp, st = submitAs(t, ts, "kc", "bob", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 12})
	if resp.StatusCode != http.StatusAccepted || st.Tenant != "bob" {
		t.Fatalf("proxied submit: status=%d tenant=%q, want 202/bob", resp.StatusCode, st.Tenant)
	}
	if resp, _ := submitAs(t, ts, "kb", "alice", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 13}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-proxy attribution status = %d, want 403", resp.StatusCode)
	}
	if resp, _ := submitAs(t, ts, "kc", "nobody", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 14}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("proxying to unknown tenant status = %d, want 403", resp.StatusCode)
	}

	if txt := metricsText(t, ts); !strings.Contains(txt, `lvpd_tenant_jobs_total{state="accepted",tenant="alice"}`) &&
		!strings.Contains(txt, `lvpd_tenant_jobs_total{tenant="alice",state="accepted"}`) {
		t.Errorf("metrics lack per-tenant counters:\n%s", txt)
	}
}

func TestListJobsFilters(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "alice", APIKey: "ka"},
		tenant.Tenant{Name: "bob", APIKey: "kb"},
	)
	_, ts := newTestServer(t, Config{Workers: 2, Tenants: reg})

	_, a1 := submitAs(t, ts, "ka", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 21})
	_, a2 := submitAs(t, ts, "ka", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 22})
	_, b1 := submitAs(t, ts, "kb", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 23})
	for _, id := range []string{a1.ID, a2.ID, b1.ID} {
		waitDoneAuth(t, ts, "ka", id)
	}

	list := listJobsAuth(t, ts, "ka", "?tenant=alice")
	if list.Total != 2 {
		t.Fatalf("tenant=alice total = %d, want 2", list.Total)
	}
	for _, j := range list.Jobs {
		if j.Tenant != "alice" {
			t.Fatalf("tenant filter leaked job %s of tenant %q", j.ID, j.Tenant)
		}
	}
	list = listJobsAuth(t, ts, "ka", "?state=done")
	if list.Total != 3 {
		t.Fatalf("state=done total = %d, want 3", list.Total)
	}
	list = listJobsAuth(t, ts, "ka", "?state=running")
	if list.Total != 0 {
		t.Fatalf("state=running total = %d, want 0", list.Total)
	}
	list = listJobsAuth(t, ts, "ka", "?state=done&tenant=bob")
	if list.Total != 1 || list.Jobs[0].ID != b1.ID {
		t.Fatalf("combined filter = %+v, want just %s", list, b1.ID)
	}

	resp, err := authedGet(ts, "ka", "/v1/jobs?state=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad state filter status = %d, want 400", resp.StatusCode)
	}
}

func authedGet(ts *httptest.Server, key, path string) (*http.Response, error) {
	hr, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		return nil, err
	}
	if key != "" {
		hr.Header.Set("Authorization", "Bearer "+key)
	}
	return ts.Client().Do(hr)
}

func listJobsAuth(t *testing.T, ts *httptest.Server, key, query string) JobList {
	t.Helper()
	resp, err := authedGet(ts, key, "/v1/jobs"+query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
	}
	var list JobList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return list
}

func waitDoneAuth(t *testing.T, ts *httptest.Server, key, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := authedGet(ts, key, "/v1/jobs/"+id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			return st
		case StateFailed, StateCanceled:
			t.Fatalf("job %s settled as %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepShedRetryAfterMatchesJobs is the regression test for the
// backpressure unification: sweep points shed by a full queue must
// carry the same EWMA-drain-derived Retry-After estimate a single-job
// 429 returns — not a different (or constant) hint.
func TestSweepShedRetryAfterMatchesJobs(t *testing.T) {
	s, ts := newIdleServer(t, Config{Workers: 1, QueueDepth: 4})
	s.noteJobDuration(10.0) // slow history: the estimate is well above 1s

	for seed := uint64(1); seed <= 4; seed++ {
		resp, _ := submit(t, ts, JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: seed})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d, want 202", seed, resp.StatusCode)
		}
	}

	resp, _ := submit(t, ts, JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp.StatusCode)
	}
	jobRetry := resp.Header.Get("Retry-After")
	if n, err := strconv.Atoi(jobRetry); err != nil || n <= 1 {
		t.Fatalf("job Retry-After = %q, want a derived value > 1", jobRetry)
	}

	body := `{"template": {"workload": "gcc2k", "insts": 20000}, "axes": {"seeds": [6, 7]}}`
	sresp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed sweep status = %d, want 429 (body %s)", sresp.StatusCode, raw)
	}
	if got := sresp.Header.Get("Retry-After"); got != jobRetry {
		t.Fatalf("sweep Retry-After = %q, job Retry-After = %q — shed points must share the drain estimate", got, jobRetry)
	}
	var sr SweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", sr.Rejected)
	}
}

// TestGreedyTenantCannotStarve is the platform's isolation acceptance
// check, end to end over HTTP: with equal weights, a tenant flooding
// its full queue share cannot keep another tenant's jobs from taking
// their half of the dispatch order.
func TestGreedyTenantCannotStarve(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "greedy", APIKey: "kg"},
		tenant.Tenant{Name: "victim", APIKey: "kv"},
	)
	s, ts := newIdleServer(t, Config{Workers: 1, QueueDepth: 40, Tenants: reg})

	for seed := uint64(1); seed <= 20; seed++ {
		resp, _ := submitAs(t, ts, "kg", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: seed})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("greedy submit %d: status %d, want 202 (cap is 20 of 40)", seed, resp.StatusCode)
		}
	}
	// The greedy tenant has hit its share; the global queue still has room.
	if resp, _ := submitAs(t, ts, "kg", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: 99}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-share submit status = %d, want 429", resp.StatusCode)
	}
	for seed := uint64(101); seed <= 110; seed++ {
		resp, _ := submitAs(t, ts, "kv", "", JobRequest{Workload: "gcc2k", Insts: 20_000, Seed: seed})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("victim submit %d: status %d, want 202", seed, resp.StatusCode)
		}
	}

	// Workers never started: drain the scheduler by hand and check the
	// order the pool would have served. Equal weights mean the victim's
	// 10 jobs all land in the first 20 dispatches despite the greedy
	// tenant's 2x backlog arriving first.
	victimServed := 0
	for i := 0; i < 20; i++ {
		p, ok := s.sched.Dequeue()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		if p.(*job).tenant == "victim" {
			victimServed++
		}
	}
	if victimServed != 10 {
		t.Fatalf("victim got %d of the first 20 dispatches, want its full 10 (half share)", victimServed)
	}
}

// TestDurabilityCrashReplay proves the WAL contract in-process: jobs
// accepted (202) before a crash are re-enqueued under their original
// IDs on restart, finish, land in the warehouse, and never run again
// on subsequent restarts — and the warehouse answers equivalent
// resubmissions across a process generation with a cold cache.
func TestDurabilityCrashReplay(t *testing.T) {
	dir := t.TempDir()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := Config{Workers: 1, DataDir: dir, DefaultInsts: 20_000, Logger: logger}

	// Generation 1: accept two jobs, then die without running them.
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.accepting.Store(true) // accept without starting workers
	ts1 := httptest.NewServer(s1.Handler())
	_, st1 := submit(t, ts1, JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000, Seed: 1})
	_, st2 := submit(t, ts1, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 20_000, Seed: 1})
	if st1.ID != "j-000001" || st2.ID != "j-000002" {
		t.Fatalf("ids = %s, %s", st1.ID, st2.ID)
	}
	ts1.Close()
	s1.crashed.Store(true) // simulated SIGKILL: no more store writes
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Shutdown(ctx)
	cancel()

	// Generation 2: replay re-enqueues both, workers finish them.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	done1 := waitDoneAuth(t, ts2, "", st1.ID)
	done2 := waitDoneAuth(t, ts2, "", st2.ID)
	if done1.CacheHit || done2.CacheHit {
		t.Fatal("replayed jobs should have simulated, not cache-hit")
	}
	if done1.SpecHash != st1.SpecHash || done2.SpecHash != st2.SpecHash {
		t.Fatal("replayed jobs changed spec hashes")
	}

	// The warehouse now serves both runs and diffs them.
	resp, err := ts2.Client().Get(ts2.URL + "/v1/runs?workload=gcc2k")
	if err != nil {
		t.Fatal(err)
	}
	var runs RunList
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if runs.Total != 2 {
		t.Fatalf("warehouse total = %d, want 2", runs.Total)
	}
	dresp, err := ts2.Client().Get(fmt.Sprintf("%s/v1/runs/diff?a=%s&b=%s", ts2.URL, st1.SpecHash, st2.SpecHash))
	if err != nil {
		t.Fatal(err)
	}
	var diff RunDiff
	if err := json.NewDecoder(dresp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || diff.A.Result == nil || diff.B.Result == nil {
		t.Fatalf("diff status=%d payload=%+v", dresp.StatusCode, diff)
	}
	ts2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatalf("gen-2 shutdown: %v", err)
	}
	cancel2()

	// Generation 3: nothing pending; the warehouse answers an
	// equivalent resubmission through a cold LRU, and fresh IDs
	// continue past the replayed ones.
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s3.Start()
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	defer func() {
		ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel3()
		s3.Shutdown(ctx3)
	}()
	if got := s3.sched.Len(); got != 0 {
		t.Fatalf("gen-3 replayed %d jobs, want 0 (all settled)", got)
	}
	resp3, st3 := submit(t, ts3, JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000, Seed: 1})
	if resp3.StatusCode != http.StatusOK || !st3.CacheHit {
		t.Fatalf("resubmission status=%d cacheHit=%v, want 200 from the warehouse", resp3.StatusCode, st3.CacheHit)
	}
	if st3.ID != "j-000003" {
		t.Fatalf("gen-3 id = %s, want j-000003 (continuing past replayed IDs)", st3.ID)
	}
	if st3.Result == nil || st3.Result.Instructions != done1.Result.Instructions ||
		st3.Result.Cycles != done1.Result.Cycles || st3.Result.IPC != done1.Result.IPC {
		t.Fatalf("warehouse result drifted: %+v vs %+v", st3.Result, done1.Result)
	}
}
