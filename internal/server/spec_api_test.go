package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestOrderedJSONSharesCacheEntry proves the cache key is canonical:
// two differently-ordered JSON encodings of the same spec — and the
// equivalent legacy flat request — hit one cache entry.
func TestOrderedJSONSharesCacheEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	first := `{"spec":{"workload":{"name":"gcc2k","insts":20000},"predictor":{"am":"pc","family":"composite"}}}`
	resp, body := postJSON(t, ts, "/v1/jobs", first)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d (%s), want 202", resp.StatusCode, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	waitState(t, ts, st.ID, 30*time.Second, StateDone)

	// Same spec, keys in a different order at every level.
	reordered := `{"spec":{"predictor":{"family":"composite","am":"pc"},"workload":{"insts":20000,"name":"gcc2k"}}}`
	resp2, body2 := postJSON(t, ts, "/v1/jobs", reordered)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("reordered submit status = %d (%s), want 200 (cache hit)", resp2.StatusCode, body2)
	}
	var st2 JobStatus
	json.Unmarshal(body2, &st2)
	if !st2.CacheHit || st2.SpecHash != st.SpecHash {
		t.Errorf("reordered spec: cacheHit=%v hash=%q, want hit with hash %q", st2.CacheHit, st2.SpecHash, st.SpecHash)
	}

	// The legacy flat spelling of the same simulation also hits.
	flat := `{"workload":"gcc2k","predictor":"composite","insts":20000,"am":"pc"}`
	resp3, body3 := postJSON(t, ts, "/v1/jobs", flat)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("flat submit status = %d (%s), want 200 (cache hit)", resp3.StatusCode, body3)
	}
	if got := s.mCacheHits.Value(); got != 2 {
		t.Errorf("cache hits = %d, want 2", got)
	}
	if got := s.mCacheMiss.Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1 (only the first request simulated)", got)
	}
}

// TestMachineSpecChangesResult exercises full machine-config control:
// a job on a non-default machine returns different stats than the
// Table III default, while a machine spec that spells out the defaults
// is recognized as the default (cache hit, same stats).
func TestMachineSpecChangesResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	_, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 20_000})
	def := waitState(t, ts, st.ID, 30*time.Second, StateDone)

	// A window small enough to bind at this run length plus a
	// one-deep prefetch queue: both deltas are observable in cycles.
	paq := 1
	resp, stM := submit(t, ts, JobRequest{
		Workload: "gcc2k", Predictor: "composite", Insts: 20_000,
		Machine: &spec.MachineSpec{ROB: 32, PAQDepth: &paq},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("machine-spec submit status = %d, want 202 (distinct simulation)", resp.StatusCode)
	}
	if stM.SpecHash == def.SpecHash {
		t.Error("non-default machine shares the default machine's spec hash")
	}
	mod := waitState(t, ts, stM.ID, 30*time.Second, StateDone)
	if mod.Result.Cycles == def.Result.Cycles {
		t.Errorf("rob=32/paq_depth=1 run has identical cycles (%d) to the Table III machine", mod.Result.Cycles)
	}
	if mod.Result.Instructions != def.Result.Instructions {
		t.Errorf("machine change altered the instruction budget: %d vs %d",
			mod.Result.Instructions, def.Result.Instructions)
	}

	// Spelling out the Table III defaults is the default machine.
	resp2, st2 := submit(t, ts, JobRequest{
		Workload: "gcc2k", Predictor: "composite", Insts: 20_000,
		Machine: &spec.MachineSpec{ROB: 224, IQ: 97},
	})
	if resp2.StatusCode != http.StatusOK || !st2.CacheHit {
		t.Errorf("default-spelled machine: status=%d cacheHit=%v, want 200/hit", resp2.StatusCode, st2.CacheHit)
	}
	if !equalResults(st2.Result, def.Result) {
		t.Error("default-spelled machine returned different stats than the default")
	}
}

func equalResults(a, b *RunResult) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return bytes.Equal(ab, bb)
}

// TestSweepExpansion posts a 2×2 sweep and verifies expansion order,
// distinct cache identities, completion, and that re-posting the same
// sweep is answered entirely from cache with 200.
func TestSweepExpansion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	body := `{
		"template": {"workload": "gcc2k", "insts": 20000},
		"axes": {"predictors": ["lvp", "composite"], "seeds": [1, 2]}
	}`
	resp, raw := postJSON(t, ts, "/v1/sweeps", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status = %d (%s), want 202", resp.StatusCode, raw)
	}
	var sw SweepResponse
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Count != 4 || sw.Queued != 4 || len(sw.Jobs) != 4 {
		t.Fatalf("sweep expansion = %+v, want 4 queued jobs", sw)
	}
	hashes := map[string]bool{}
	for _, j := range sw.Jobs {
		hashes[j.SpecHash] = true
	}
	if len(hashes) != 4 {
		t.Errorf("sweep points share spec hashes: %v", hashes)
	}
	for i, j := range sw.Jobs {
		st := waitState(t, ts, j.ID, 30*time.Second, StateDone)
		wantPred := []string{"lvp", "lvp", "composite", "composite"}[i]
		if st.Result == nil || st.Result.Predictor != wantPred {
			t.Errorf("point %d: predictor = %v, want %s (expansion order, last axis fastest)", i, st.Result, wantPred)
		}
	}

	resp2, raw2 := postJSON(t, ts, "/v1/sweeps", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat sweep status = %d (%s), want 200 (all cached)", resp2.StatusCode, raw2)
	}
	var sw2 SweepResponse
	json.Unmarshal(raw2, &sw2)
	if sw2.Cached != 4 || sw2.Queued != 0 {
		t.Errorf("repeat sweep = %+v, want 4 cached", sw2)
	}

	// A bad axis value rejects the whole sweep up front.
	resp3, raw3 := postJSON(t, ts, "/v1/sweeps",
		`{"template": {"workload": "gcc2k"}, "axes": {"predictors": ["lvp", "nope"]}}`)
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw3), "point 1") {
		t.Errorf("invalid sweep: status=%d body=%s, want 400 naming point 1", resp3.StatusCode, raw3)
	}

	// Oversized expansions are refused before any admission.
	big := `{"template": {"workload": "gcc2k"}, "axes": {"seeds": [` +
		strings.TrimSuffix(strings.Repeat("1,", defaultMaxSweepPoints+1), ",") + `]}}`
	resp4, _ := postJSON(t, ts, "/v1/sweeps", big)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep status = %d, want 400", resp4.StatusCode)
	}
}

// TestSweepBackpressure fills a 1-worker, depth-2 server and posts a
// sweep larger than the remaining queue space: the response must be
// 429 + Retry-After with the overflow points marked rejected while the
// admitted points survive and complete.
func TestSweepBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxInsts: -1})

	_, blocker := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "none", Insts: 500_000_000})
	waitState(t, ts, blocker.ID, 10*time.Second, StateRunning)

	body := `{
		"template": {"predictor": "lvp", "insts": 20000},
		"axes": {"workloads": ["mcf", "xalancbmk", "sjeng", "povray", "soplex"]}
	}`
	resp, raw := postJSON(t, ts, "/v1/sweeps", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing sweep status = %d (%s), want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 sweep response missing Retry-After")
	}
	var sw SweepResponse
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Queued != 2 || sw.Rejected != 3 {
		t.Fatalf("sweep = %+v, want 2 queued / 3 rejected (queue depth 2, worker busy)", sw)
	}
	for _, j := range sw.Jobs {
		if j.State == StateRejected && j.ID != "" {
			t.Errorf("rejected point kept a job id %q", j.ID)
		}
	}

	// Release the worker; the admitted points must complete.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if _, err := ts.Client().Do(delReq); err != nil {
		t.Fatal(err)
	}
	for _, j := range sw.Jobs {
		if j.State != StateQueued {
			continue
		}
		st := waitState(t, ts, j.ID, 30*time.Second, StateDone)
		if st.Result == nil || st.Result.Instructions != 20_000 {
			t.Errorf("admitted sweep point %s finished without a plausible result", j.ID)
		}
	}
}

// TestPresets covers GET /v1/presets and submitting a job by preset
// name.
func TestPresets(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, err := ts.Client().Get(ts.URL + "/v1/presets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Presets []struct {
			Name        string   `json:"name"`
			Description string   `json:"description"`
			Spec        spec.Sim `json:"spec"`
		} `json:"presets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range body.Presets {
		names[p.Name] = true
		if p.Description == "" {
			t.Errorf("preset %s has no description", p.Name)
		}
	}
	for _, want := range []string{"table3", "best-9.6KB", "eves-32KB"} {
		if !names[want] {
			t.Errorf("preset list missing %q", want)
		}
	}

	_, st := submit(t, ts, JobRequest{Preset: "best-9.6KB", Workload: "gcc2k", Insts: 20_000})
	final := waitState(t, ts, st.ID, 30*time.Second, StateDone)
	if final.Result == nil || final.Result.Predictor != "composite" {
		t.Fatalf("preset job result = %+v, want the canonical composite family", final.Result)
	}
	if len(final.Result.Components) == 0 {
		t.Error("preset composite result missing per-component breakdown")
	}

	resp2, _ := submit(t, ts, JobRequest{Preset: "no-such", Workload: "gcc2k"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown preset status = %d, want 400", resp2.StatusCode)
	}
}
