package server

import (
	"io"
	"net/http"
)

// maxTraceArtifactBytes bounds a PUT /v1/traces body. Artifacts are
// gzip-compressed recorded streams — a few bytes per instruction — so
// 64 MiB comfortably covers the largest admissible budgets while
// keeping a hostile upload from ballooning memory.
const maxTraceArtifactBytes = 64 << 20

// handleGetTrace serves the encoded artifact stored under the content
// address in the path, if this process holds it (resident or in the
// trace cache directory). It never generates: an address alone does not
// say which workload to run, and generation stays tied to simulation
// demand.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	data, ok := s.traces.Export(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no artifact under this address")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handlePutTrace installs a pre-generated artifact under its content
// address — the coordinator's pre-shipping path, which lets a sweep's
// workers replay a stream the coordinator recorded once instead of
// each generating it. The store verifies that the decoded content
// hashes to the address before accepting, so a worker cannot be fed a
// stream that doesn't match the spec it will later simulate.
func (s *Server) handlePutTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading artifact body: "+err.Error())
		return
	}
	if err := s.traces.Put(key, data); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
