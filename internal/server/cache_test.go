package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestResultCacheConcurrent hammers one small cache from many
// goroutines with overlapping keys so Get, Put (insert and update), and
// eviction all race; run under -race it proves the cache's locking.
// Every hit must return the value stored under that key, and the cache
// must never exceed its capacity.
func TestResultCacheConcurrent(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 16
		keys       = 32 // 4x capacity: constant eviction pressure
		ops        = 2000
	)
	c := NewResultCache(capacity)

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (g*31 + i*7) % keys
				key := fmt.Sprintf("k-%02d", k)
				if i%3 == 0 {
					c.Put(key, RunResult{Workload: key, Cycles: uint64(k)})
					continue
				}
				res, ok := c.Get(key)
				if ok && (res.Workload != key || res.Cycles != uint64(k)) {
					select {
					case errs <- fmt.Sprintf("Get(%s) returned entry for %q", key, res.Workload):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if n := c.Len(); n > capacity {
		t.Errorf("cache holds %d entries, capacity %d", n, capacity)
	}
	// Every key present after the storm still maps to its own value.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k-%02d", k)
		if res, ok := c.Get(key); ok && res.Workload != key {
			t.Errorf("post-storm Get(%s) = entry for %q", key, res.Workload)
		}
	}
}
