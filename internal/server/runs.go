package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/store"
)

// RunView is one warehouse record rendered by GET /v1/runs: the
// retained result plus its attribution and trace linkage. Unlike the
// job listing (bounded, forgets old jobs), the warehouse retains every
// finished spec hash for the life of the data directory.
type RunView struct {
	SpecHash  string     `json:"spec_hash"`
	Tenant    string     `json:"tenant,omitempty"`
	Workload  string     `json:"workload,omitempty"`
	Predictor string     `json:"predictor,omitempty"`
	Contexts  int        `json:"contexts,omitempty"`
	TraceID   string     `json:"trace_id,omitempty"`
	Time      string     `json:"time"`
	Result    *RunResult `json:"result,omitempty"`
}

// RunList is the response of GET /v1/runs.
type RunList struct {
	Runs  []RunView `json:"runs"`
	Total int       `json:"total"`
}

// RunDiff is the response of GET /v1/runs/diff: the two results and
// the headline metric deltas (B minus A).
type RunDiff struct {
	A     RunView   `json:"a"`
	B     RunView   `json:"b"`
	Delta DiffDelta `json:"delta"`
}

// DiffDelta holds B-minus-A deltas of the comparable result metrics.
// When the two runs simulate different context counts (an SMT run
// against its single-context composite, the main use of the contexts
// dimension) the headline deltas compare merged machine-wide metrics;
// PerContext appears only when both sides break out the same contexts.
type DiffDelta struct {
	SpeedupPct  float64 `json:"speedup_pct"`
	IPC         float64 `json:"ipc"`
	CoveragePct float64 `json:"coverage_pct"`
	Accuracy    float64 `json:"accuracy"`
	Cycles      int64   `json:"cycles"`

	// Contexts flags a comparison across context counts: 0 when both
	// runs simulate the same number of contexts, B-minus-A otherwise.
	// Single-context results count as 1 whether they predate the
	// contexts column (0) or spell it out.
	Contexts int `json:"contexts,omitempty"`

	// PerContext is the per-context delta breakdown, present when both
	// runs carry per-context results for the same context count.
	PerContext []ContextDelta `json:"per_context,omitempty"`
}

// ContextDelta is one hardware context's B-minus-A metric deltas.
type ContextDelta struct {
	Context     int     `json:"context"`
	SpeedupPct  float64 `json:"speedup_pct"`
	IPC         float64 `json:"ipc"`
	CoveragePct float64 `json:"coverage_pct"`
	Accuracy    float64 `json:"accuracy"`
}

// numContexts folds a result's context count into the filter's class
// convention: 0 and 1 are both the single-context class.
func numContexts(r *RunResult) int {
	if r.Contexts > 1 {
		return r.Contexts
	}
	return 1
}

// warehouse returns the result warehouse, or nil with a rendered error
// when the daemon runs without a data directory.
func (s *Server) warehouse(w http.ResponseWriter) *store.Warehouse {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no result warehouse: daemon started without -data-dir")
		return nil
	}
	return s.st.Warehouse()
}

func newRunView(rec store.RunRecord) RunView {
	v := RunView{
		SpecHash:  rec.SpecHash,
		Tenant:    rec.Tenant,
		Workload:  rec.Workload,
		Predictor: rec.Predictor,
		Contexts:  rec.Contexts,
		TraceID:   rec.TraceID,
		Time:      rec.Time.Format(time.RFC3339),
	}
	var res RunResult
	if err := json.Unmarshal(rec.Result, &res); err == nil {
		v.Result = &res
	}
	return v
}

// handleListRuns implements GET /v1/runs: the warehouse listing, most
// recent first, filterable by ?spec_hash=, ?tenant=, ?workload=,
// ?predictor=, ?contexts= (1 also matches records from before the
// contexts column existed), ?source= ("external" for uploaded ext:
// traces, "synthetic" for generated workloads), and bounded by ?limit=
// (default 50, max 500).
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	wh := s.warehouse(w)
	if wh == nil {
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 500 {
			writeError(w, http.StatusBadRequest, "limit must be an integer in [1, 500]")
			return
		}
		limit = n
	}
	q := r.URL.Query()
	var contexts *int
	if v := q.Get("contexts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "contexts must be a non-negative integer")
			return
		}
		contexts = &n
	}
	source := q.Get("source")
	if source != "" && source != "external" && source != "synthetic" {
		writeError(w, http.StatusBadRequest, `source must be "external" or "synthetic"`)
		return
	}
	recs := wh.List(store.Filter{
		SpecHash:  q.Get("spec_hash"),
		Tenant:    q.Get("tenant"),
		Workload:  q.Get("workload"),
		Predictor: q.Get("predictor"),
		Source:    source,
		Contexts:  contexts,
		Limit:     limit,
	})
	list := RunList{Runs: make([]RunView, 0, len(recs)), Total: wh.Len()}
	for _, rec := range recs {
		list.Runs = append(list.Runs, newRunView(rec))
	}
	writeJSON(w, http.StatusOK, list)
}

// handleGetRun implements GET /v1/runs/{hash}: one retained result by
// canonical spec hash.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	wh := s.warehouse(w)
	if wh == nil {
		return
	}
	rec, ok := wh.Get(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no retained run for that spec hash")
		return
	}
	writeJSON(w, http.StatusOK, newRunView(rec))
}

// handleDiffRuns implements GET /v1/runs/diff?a=HASH&b=HASH: fetch two
// retained results and report the headline metric deltas (b minus a) —
// the quickest way to compare two configurations that already ran.
func (s *Server) handleDiffRuns(w http.ResponseWriter, r *http.Request) {
	wh := s.warehouse(w)
	if wh == nil {
		return
	}
	aHash, bHash := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if aHash == "" || bHash == "" {
		writeError(w, http.StatusBadRequest, "diff needs ?a= and ?b= spec hashes")
		return
	}
	aRec, ok := wh.Get(aHash)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained run for spec hash a="+aHash)
		return
	}
	bRec, ok := wh.Get(bHash)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained run for spec hash b="+bHash)
		return
	}
	diff := RunDiff{A: newRunView(aRec), B: newRunView(bRec)}
	if diff.A.Result == nil || diff.B.Result == nil {
		writeError(w, http.StatusInternalServerError, "retained result payload is unreadable")
		return
	}
	ra, rb := diff.A.Result, diff.B.Result
	diff.Delta = DiffDelta{
		SpeedupPct:  rb.SpeedupPct - ra.SpeedupPct,
		IPC:         rb.IPC - ra.IPC,
		CoveragePct: rb.CoveragePct - ra.CoveragePct,
		Accuracy:    rb.Accuracy - ra.Accuracy,
		Cycles:      int64(rb.Cycles) - int64(ra.Cycles),
		Contexts:    numContexts(rb) - numContexts(ra),
	}
	if n := len(ra.PerContext); n > 0 && n == len(rb.PerContext) {
		diff.Delta.PerContext = make([]ContextDelta, n)
		for i := range diff.Delta.PerContext {
			ca, cb := ra.PerContext[i], rb.PerContext[i]
			diff.Delta.PerContext[i] = ContextDelta{
				Context:     ca.Context,
				SpeedupPct:  cb.SpeedupPct - ca.SpeedupPct,
				IPC:         cb.IPC - ca.IPC,
				CoveragePct: cb.CoveragePct - ca.CoveragePct,
				Accuracy:    cb.Accuracy - ca.Accuracy,
			}
		}
	}
	writeJSON(w, http.StatusOK, diff)
}
