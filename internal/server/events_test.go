package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	otrace "repro/internal/obs/trace"
)

type sseEvent struct {
	name string
	data string
}

// readSSE parses one Server-Sent Events stream until a terminal job
// event (done/failed/canceled) or EOF.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if terminalState(cur.name) {
					return events
				}
			}
			cur = sseEvent{}
		}
	}
	return events
}

func TestJobEventsStreamsProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		MaxInsts:     -1,
		ProgressPoll: 2 * time.Millisecond,
		// Publish every 2k instructions so even short phases are
		// observable through the poll loop.
		ProgressInterval: 2048,
	})
	const insts = 1_500_000
	resp, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: insts})
	resp.Body.Close()
	if st.ID == "" {
		t.Fatalf("submit returned no job id (status %d)", resp.StatusCode)
	}

	sresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	events := readSSE(t, sresp.Body)
	if len(events) < 3 {
		t.Fatalf("stream delivered %d events, want at least initial + progress + terminal: %+v", len(events), events)
	}

	switch events[0].name {
	case "queued", "started":
	default:
		t.Errorf("first event %q, want queued or started", events[0].name)
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("terminal event %q (data %s), want done", last.name, last.data)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("terminal event payload: %v", err)
	}
	if final.Result == nil || final.Result.Instructions != insts {
		t.Errorf("terminal event result = %+v, want %d instructions", final.Result, insts)
	}

	// At least one mid-run progress event, and at least one from the
	// configured-run phase carrying per-component predictor telemetry.
	var progress, midRun, runPhase int
	for _, e := range events {
		if e.name != "progress" {
			continue
		}
		progress++
		var pv ProgressView
		if err := json.Unmarshal([]byte(e.data), &pv); err != nil {
			t.Fatalf("progress payload %q: %v", e.data, err)
		}
		if pv.TotalInstructions != insts {
			t.Errorf("progress total = %d, want %d", pv.TotalInstructions, insts)
		}
		if pv.Instructions > 0 && pv.Instructions < insts {
			midRun++
		}
		if pv.Phase == "run" && len(pv.Components) > 0 {
			runPhase++
			var used uint64
			for _, c := range pv.Components {
				if c.Name == "" {
					t.Errorf("unnamed component in %+v", pv.Components)
				}
				used += c.Used + c.Correct + c.Incorrect
			}
			if used == 0 {
				t.Errorf("run-phase components all zero: %+v", pv.Components)
			}
		}
	}
	if progress == 0 || midRun == 0 {
		t.Errorf("saw %d progress events (%d mid-run), want both > 0", progress, midRun)
	}
	if runPhase == 0 {
		t.Error("no run-phase progress event carried component telemetry")
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestJobJoinsSubmitterTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	parent := otrace.SpanContext{TraceID: "00000000000000000000000000abcdef", SpanID: "00000000000000ab"}
	body := strings.NewReader(`{"workload": "gcc2k", "predictor": "lvp", "insts": 20000}`)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(otrace.TraceparentHeader, parent.Traceparent())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(otrace.TraceIDHeader); got != parent.TraceID {
		t.Errorf("X-Trace-Id = %q, want %q", got, parent.TraceID)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitState(t, ts, st.ID, 30*time.Second, StateDone)
	if final.TraceID != parent.TraceID {
		t.Fatalf("job trace id = %q, want submitter's %q", final.TraceID, parent.TraceID)
	}

	// The exported Chrome trace holds the whole story: the HTTP submit
	// span and the worker-side job/baseline/run spans, one trace.
	tresp, err := ts.Client().Get(ts.URL + "/debug/traces/" + parent.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace export status %d", tresp.StatusCode)
	}
	raw, _ := io.ReadAll(tresp.Body)
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace export is not Chrome JSON: %v", err)
	}
	want := map[string]bool{"POST /v1/jobs": false, "job": false, "baseline": false, "run": false}
	for _, e := range chrome.TraceEvents {
		if _, ok := want[e.Name]; ok && e.Ph == "X" {
			want[e.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace %s is missing span %q:\n%s", parent.TraceID, name, raw)
		}
	}
}

func TestReadyzTracksDrain(t *testing.T) {
	cfg := Config{Workers: 1, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Errorf("ready server /readyz = %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Errorf("drained server /readyz = %d, want 503", code)
	}
	// Liveness stays green through the drain: /healthz answers 200 as
	// long as the process can serve at all.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after drain = %d, want 200 (liveness)", hresp.StatusCode)
	}
}
