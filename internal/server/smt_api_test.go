package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestSMTJobEndToEnd drives a heterogeneous 4-context job through the
// full daemon path: accept, SMT baseline, configured run, per-context
// result assembly, warehouse retention, the contexts listing filter,
// and the diff endpoint against a single-context run.
func TestSMTJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DataDir: t.TempDir()})

	smtSpec := `{"spec":{
		"workload":{"name":"gcc2k","names":["gcc2k","mcf","sjeng","omnetpp"],"insts":20000},
		"machine":{"contexts":4},
		"predictor":{"family":"composite","am":"pc"}}}`
	resp, body := postJSON(t, ts, "/v1/jobs", smtSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("SMT submit status = %d (%s), want 202", resp.StatusCode, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	final := waitState(t, ts, st.ID, 60*time.Second, StateDone)
	r := final.Result
	if r == nil {
		t.Fatal("done SMT job has no result")
	}
	if r.Contexts != 4 || len(r.PerContext) != 4 {
		t.Fatalf("Contexts = %d, PerContext len %d, want 4/4", r.Contexts, len(r.PerContext))
	}
	if r.Workload != "gcc2k+mcf+sjeng+omnetpp" {
		t.Errorf("merged workload label = %q", r.Workload)
	}
	if r.Instructions != 80_000 {
		t.Errorf("merged instructions = %d, want 80000 (4 x 20k)", r.Instructions)
	}
	if r.IPC <= 0 || r.BaselineIPC <= 0 {
		t.Errorf("implausible merged result: %+v", r)
	}
	wantStreams := []string{"gcc2k", "mcf#1", "sjeng#2", "omnetpp#3"}
	wantNames := []string{"gcc2k", "mcf", "sjeng", "omnetpp"}
	for i, cr := range r.PerContext {
		if cr.Context != i || cr.Workload != wantNames[i] || cr.Stream != wantStreams[i] {
			t.Errorf("context %d = %d/%s/%s, want %d/%s/%s",
				i, cr.Context, cr.Workload, cr.Stream, i, wantNames[i], wantStreams[i])
		}
		if cr.Instructions != 20_000 {
			t.Errorf("context %d instructions = %d, want 20000", i, cr.Instructions)
		}
		if cr.IPC <= 0 || cr.BaselineIPC <= 0 {
			t.Errorf("context %d has implausible IPC: %+v", i, cr)
		}
	}

	// Re-posting the identical spec hits the result cache.
	resp2, body2 := postJSON(t, ts, "/v1/jobs", smtSpec)
	var st2 JobStatus
	json.Unmarshal(body2, &st2)
	if resp2.StatusCode != http.StatusOK || !st2.CacheHit || st2.SpecHash != final.SpecHash {
		t.Errorf("SMT resubmit: status=%d hit=%v hash=%q, want 200/hit/%q",
			resp2.StatusCode, st2.CacheHit, st2.SpecHash, final.SpecHash)
	}

	// A single-context run of the lead workload for the diff.
	_, stS := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 20_000})
	single := waitState(t, ts, stS.ID, 60*time.Second, StateDone)

	// The warehouse filter splits the two records by context count.
	listRuns := func(query string) RunList {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: status %d", query, resp.StatusCode)
		}
		var list RunList
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list
	}
	smtRuns := listRuns("?contexts=4")
	if len(smtRuns.Runs) != 1 || smtRuns.Runs[0].SpecHash != final.SpecHash {
		t.Fatalf("runs?contexts=4 = %+v, want just the SMT record", smtRuns.Runs)
	}
	if smtRuns.Runs[0].Contexts != 4 || smtRuns.Runs[0].Workload != "gcc2k+mcf+sjeng+omnetpp" {
		t.Errorf("SMT run view = %+v", smtRuns.Runs[0])
	}
	singleRuns := listRuns("?contexts=1")
	if len(singleRuns.Runs) != 1 || singleRuns.Runs[0].SpecHash != single.SpecHash {
		t.Fatalf("runs?contexts=1 = %+v, want just the single-context record", singleRuns.Runs)
	}
	if got := listRuns(""); len(got.Runs) != 2 {
		t.Fatalf("unfiltered runs = %d records, want 2", len(got.Runs))
	}

	// Diff across context counts: merged-metric deltas plus the count
	// delta, no per-context rows (the sides disagree on contexts).
	dresp, err := ts.Client().Get(fmt.Sprintf("%s/v1/runs/diff?a=%s&b=%s", ts.URL, single.SpecHash, final.SpecHash))
	if err != nil {
		t.Fatal(err)
	}
	var diff RunDiff
	if err := json.NewDecoder(dresp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d", dresp.StatusCode)
	}
	if diff.Delta.Contexts != 3 {
		t.Errorf("diff contexts delta = %d, want 3 (4 minus 1)", diff.Delta.Contexts)
	}
	if len(diff.Delta.PerContext) != 0 {
		t.Errorf("cross-context-count diff produced per-context rows: %+v", diff.Delta.PerContext)
	}
	if diff.Delta.Cycles != int64(r.Cycles)-int64(single.Result.Cycles) {
		t.Errorf("diff cycles delta = %d", diff.Delta.Cycles)
	}
}

// TestSMTDiffPerContext diffs two 2-context runs that differ only in
// predictor family and expects the per-context delta breakdown.
func TestSMTDiffPerContext(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DataDir: t.TempDir()})

	post := func(family string) JobStatus {
		t.Helper()
		body := fmt.Sprintf(`{"spec":{
			"workload":{"name":"gcc2k","names":["gcc2k","mcf"],"insts":20000},
			"machine":{"contexts":2},
			"predictor":{"family":%q}}}`, family)
		resp, raw := postJSON(t, ts, "/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d (%s)", family, resp.StatusCode, raw)
		}
		var st JobStatus
		json.Unmarshal(raw, &st)
		return waitState(t, ts, st.ID, 60*time.Second, StateDone)
	}
	lvp := post("lvp")
	comp := post("composite")

	dresp, err := ts.Client().Get(fmt.Sprintf("%s/v1/runs/diff?a=%s&b=%s", ts.URL, lvp.SpecHash, comp.SpecHash))
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var diff RunDiff
	if err := json.NewDecoder(dresp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d", dresp.StatusCode)
	}
	if diff.Delta.Contexts != 0 {
		t.Errorf("same-count diff contexts delta = %d, want 0", diff.Delta.Contexts)
	}
	if len(diff.Delta.PerContext) != 2 {
		t.Fatalf("per-context deltas = %d rows, want 2", len(diff.Delta.PerContext))
	}
	for i, cd := range diff.Delta.PerContext {
		if cd.Context != i {
			t.Errorf("delta row %d labels context %d", i, cd.Context)
		}
		want := diff.B.Result.PerContext[i].SpeedupPct - diff.A.Result.PerContext[i].SpeedupPct
		if cd.SpeedupPct != want {
			t.Errorf("context %d speedup delta = %g, want %g", i, cd.SpeedupPct, want)
		}
	}
}
