package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	if cfg.DefaultInsts == 0 {
		cfg.DefaultInsts = 20_000
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, st
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls the job until it reaches a terminal state or one of
// the wanted states, failing the test on timeout.
func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getJob(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			t.Fatalf("job %s reached terminal state %q (err=%q), wanted one of %v", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q after %v, wanted one of %v", id, st.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 20_000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh job state = %q, want queued", st.State)
	}
	final := waitState(t, ts, st.ID, 30*time.Second, StateDone)
	r := final.Result
	if r == nil {
		t.Fatal("done job has no result")
	}
	if r.Workload != "gcc2k" || r.Predictor != "composite" {
		t.Errorf("result identifies %s/%s, want gcc2k/composite", r.Workload, r.Predictor)
	}
	if r.Instructions != 20_000 || r.IPC <= 0 || r.BaselineIPC <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	if len(r.Components) == 0 {
		t.Error("composite result missing per-component breakdown")
	}
	// First job for this (insts, seed) context: it simulated both the
	// baseline and the configured run.
	if r.SimInstructions != 40_000 {
		t.Errorf("SimInstructions = %d, want 40000 (baseline + run)", r.SimInstructions)
	}
	if r.SimMIPS <= 0 {
		t.Errorf("SimMIPS = %g, want > 0", r.SimMIPS)
	}
	if final.Started == nil || final.Finished == nil {
		t.Error("done job missing started/finished timestamps")
	}
}

func TestRepeatRequestServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := JobRequest{Workload: "mcf", Predictor: "lvp", Entries: 512, Insts: 20_000}
	_, st1 := submit(t, ts, req)
	first := waitState(t, ts, st1.ID, 30*time.Second, StateDone)

	resp, st2 := submit(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status = %d, want 200", resp.StatusCode)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("cached submit state=%q cacheHit=%v, want done/true", st2.State, st2.CacheHit)
	}
	if !reflect.DeepEqual(st2.Result, first.Result) {
		t.Errorf("cached result differs from original:\n%+v\n%+v", st2.Result, first.Result)
	}
	if got := s.mCacheHits.Value(); got != 1 {
		t.Errorf("cache hit counter = %d, want 1", got)
	}
	// The second request must not have simulated: exactly one job's
	// worth of cache misses.
	if got := s.mCacheMiss.Value(); got != 1 {
		t.Errorf("cache miss counter = %d, want 1", got)
	}
	if !strings.Contains(metricsText(t, ts), "lvpd_cache_hits_total 1") {
		t.Error("/metrics missing lvpd_cache_hits_total 1")
	}
}

// TestBackpressure floods a 1-worker, depth-2 server: the long job
// occupies the worker, two more fill the queue, and further distinct
// submissions must be rejected with 429 + Retry-After while accepted
// jobs still complete correctly.
func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxInsts: -1})

	// Occupy the worker with a job far too long to finish during the
	// test; it is cancelled at the end.
	_, blocker := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "none", Insts: 500_000_000})
	waitState(t, ts, blocker.ID, 10*time.Second, StateRunning)

	workloads := []string{"mcf", "xalancbmk", "sjeng", "povray", "soplex", "wrf"}
	type outcome struct {
		code  int
		retry string
		id    string
	}
	results := make([]outcome, len(workloads))
	var wg sync.WaitGroup
	for i, w := range workloads {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			resp, st := submit(t, ts, JobRequest{Workload: w, Predictor: "lvp", Insts: 20_000})
			results[i] = outcome{code: resp.StatusCode, retry: resp.Header.Get("Retry-After"), id: st.ID}
		}(i, w)
	}
	wg.Wait()

	var accepted, rejected int
	for _, r := range results {
		switch r.code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
			if n, err := strconv.Atoi(r.retry); err != nil || n < 1 || n > 60 {
				t.Errorf("429 Retry-After = %q, want an integer in [1, 60]", r.retry)
			}
		default:
			t.Errorf("unexpected submit status %d", r.code)
		}
	}
	if accepted != 2 || rejected != len(workloads)-2 {
		t.Fatalf("accepted=%d rejected=%d, want 2/%d (queue depth 2, worker busy)",
			accepted, rejected, len(workloads)-2)
	}

	// Release the worker; accepted jobs must complete with results.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if _, err := ts.Client().Do(delReq); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.code != http.StatusAccepted {
			continue
		}
		st := waitState(t, ts, r.id, 30*time.Second, StateDone)
		if st.Result == nil || st.Result.Instructions != 20_000 {
			t.Errorf("accepted job %s finished without a plausible result: %+v", r.id, st.Result)
		}
	}
}

// TestCancelMidSimulation verifies DELETE stops a running job promptly
// and that the simulation goroutine does not leak.
func TestCancelMidSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInsts: -1})

	// Warm up a keep-alive connection so its goroutines are part of the
	// baseline, not mistaken for a leak.
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	before := runtime.NumGoroutine()

	_, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 500_000_000})
	waitState(t, ts, st.ID, 10*time.Second, StateRunning)

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	start := time.Now()
	resp, err := ts.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitState(t, ts, st.ID, 10*time.Second, StateCanceled)
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancellation took %v", el)
	}
	if final.Result != nil {
		t.Error("cancelled job has a result")
	}

	// The worker returns to its queue loop; total goroutines settle
	// back to the pre-submit level (idle HTTP connections are closed
	// before comparing).
	deadline := time.Now().Add(10 * time.Second)
	for {
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInsts: -1})
	_, st := submit(t, ts, JobRequest{
		Workload: "gcc2k", Predictor: "none", Insts: 500_000_000, TimeoutMS: 200,
	})
	final := waitState(t, ts, st.ID, 20*time.Second, StateFailed)
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("timeout error = %q, want mention of deadline", final.Error)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown workload", `{"workload":"nope","predictor":"lvp"}`, 400},
		{"unknown predictor", `{"workload":"gcc2k","predictor":"nope"}`, 400},
		{"malformed json", `{"workload":`, 400},
		{"unknown field", `{"workload":"gcc2k","bogus":1}`, 400},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job GET status = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000})
	waitState(t, ts, st.ID, 30*time.Second, StateDone)

	out := metricsText(t, ts)
	for _, want := range []string{
		"# TYPE lvpd_jobs_total counter",
		`lvpd_jobs_total{state="done"} 1`,
		"# TYPE lvpd_queue_depth gauge",
		"lvpd_queue_depth 0",
		"# TYPE lvpd_job_duration_seconds histogram",
		"lvpd_job_duration_seconds_bucket",
		"lvpd_job_duration_seconds_count 1",
		"lvpd_cache_misses_total 1",
		"lvpd_sim_instructions_total 40000", // baseline + lvp run, 20k each
		"lvpd_http_requests_total",
		"# TYPE lvpd_sim_mips gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The derived throughput gauge must be positive once a job has run.
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, "lvpd_sim_mips "); ok {
			var mips float64
			if _, err := fmt.Sscanf(v, "%g", &mips); err != nil || mips <= 0 {
				t.Errorf("lvpd_sim_mips = %q, want a positive value", v)
			}
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("health status = %v", health["status"])
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workloads) < 50 {
		t.Errorf("workload list suspiciously short: %d", len(body.Workloads))
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	cfg := Config{Workers: 1, DefaultInsts: 20_000}
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := submit(t, ts, JobRequest{Workload: "gcc2k", Predictor: "lvp"})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown failed: %v", err)
	}
	// The queued job was drained, not dropped.
	final := getJob(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state after drain = %q, want done", final.State)
	}
	// New submissions are refused.
	resp, _ := submit(t, ts, JobRequest{Workload: "mcf", Predictor: "lvp"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit status = %d, want 503", resp.StatusCode)
	}
}

// TestCacheKeyCanonicalization proves the cache identity is the spec's
// canonical hash: flat defaults written out, the equivalent explicit
// spec, and the bare request all resolve to one key, while a real
// difference changes it.
func TestCacheKeyCanonicalization(t *testing.T) {
	d := spec.Defaults{Insts: 200_000, Seed: 0xC0FFEE}
	resolve := func(r JobRequest) string {
		t.Helper()
		sim, err := r.ResolveSpec(d)
		if err != nil {
			t.Fatalf("ResolveSpec: %v", err)
		}
		return sim.CanonicalHash()
	}
	a := resolve(JobRequest{Workload: "gcc2k"})
	b := resolve(JobRequest{Workload: "gcc2k", Predictor: "composite", Entries: 1024, AM: "pc", Insts: 200_000, Seed: 0xC0FFEE, TimeoutMS: 5000})
	if a != b {
		t.Error("equivalent flat requests hash differently")
	}
	c := resolve(JobRequest{Spec: &spec.Sim{
		Workload:  spec.WorkloadSpec{Name: "gcc2k"},
		Predictor: spec.PredictorSpec{Family: spec.FamilyComposite, EntriesPer: 1024, AM: spec.AMPC},
	}})
	if c != a {
		t.Error("explicit spec hashes differently from the equivalent flat request")
	}
	if resolve(JobRequest{Workload: "gcc2k", Entries: 2048}) == b {
		t.Error("different entries hash identically")
	}
	if resolve(JobRequest{Workload: "gcc2k", Machine: &spec.MachineSpec{ROB: 512}}) == a {
		t.Error("different machine hashes identically")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := NewResultCache(2)
	c.Put("a", RunResult{Workload: "a"})
	c.Put("b", RunResult{Workload: "b"})
	c.Get("a") // refresh a
	c.Put("c", RunResult{Workload: "c"})
	if _, ok := c.Get("b"); ok {
		t.Error("LRU kept the least recently used entry")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("LRU evicted the recently used entry")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("LRU lost the newest entry")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

// TestRetryAfterEstimate pins the backpressure hint formula: backlog ÷
// recent drain rate, clamped to [1, 60], falling back to 1 second when
// nothing has completed yet.
func TestRetryAfterEstimate(t *testing.T) {
	cases := []struct {
		name    string
		depth   int
		workers int
		ewma    float64
		want    int
	}{
		{"no history yet", 10, 4, 0, 1},
		{"fast jobs round up to 1s", 3, 4, 0.01, 1},
		{"backlog divided across workers", 7, 4, 2.0, 4}, // (7+1)*2/4
		{"single worker", 3, 1, 1.5, 6},                  // (3+1)*1.5
		{"clamped at 60", 100, 1, 30, 60},
		{"zero workers treated as one", 1, 0, 2.0, 4},
		{"negative depth falls back", -1, 4, 2.0, 1},
	}
	for _, c := range cases {
		if got := retryAfterEstimate(c.depth, c.workers, c.ewma); got != c.want {
			t.Errorf("%s: retryAfterEstimate(%d, %d, %g) = %d, want %d",
				c.name, c.depth, c.workers, c.ewma, got, c.want)
		}
	}
}

// TestRetryAfterTracksBacklog proves the 429 hint is derived, not
// hardcoded: after slow jobs raise the duration EWMA, a saturated
// queue's Retry-After must exceed the old constant 1. The server is
// built but not Started so the scheduled dummies stay queued.
func TestRetryAfterTracksBacklog(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	tn := s.tenants.Default()
	// Pretend eight 10-second jobs are queued behind a slow history.
	s.noteJobDuration(10.0)
	for i := 0; i < 8; i++ {
		if err := s.sched.Enqueue(tn, i, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfterSeconds(tn); got != 60 {
		t.Errorf("Retry-After = %d, want 60 (9 jobs x 10s, one worker, clamped)", got)
	}
	for i := 0; i < 6; i++ {
		s.sched.Dequeue()
	}
	if got := s.retryAfterSeconds(tn); got != 30 {
		t.Errorf("Retry-After = %d, want 30 (3 jobs x 10s, one worker)", got)
	}
}

// TestConfigValidation covers the MaxSweepPoints config field: invalid
// values are rejected by New with a clear error, and a small configured
// cap is enforced by the sweep endpoint.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxSweepPoints: -1}); err == nil ||
		!strings.Contains(err.Error(), "MaxSweepPoints") {
		t.Errorf("New(MaxSweepPoints: -1) err = %v, want a MaxSweepPoints error", err)
	}
	if _, err := New(Config{MaxSweepPoints: 1 << 21}); err == nil ||
		!strings.Contains(err.Error(), "ceiling") {
		t.Errorf("New(MaxSweepPoints: 1<<21) err = %v, want a ceiling error", err)
	}

	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepPoints: 2})
	resp, raw := postJSON(t, ts, "/v1/sweeps",
		`{"template": {"workload": "gcc2k"}, "axes": {"seeds": [1, 2, 3]}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "max 2") {
		t.Errorf("3-point sweep on a max-2 server: status=%d body=%s, want 400 naming the cap", resp.StatusCode, raw)
	}
	resp2, _ := postJSON(t, ts, "/v1/sweeps",
		`{"template": {"workload": "gcc2k", "insts": 20000}, "axes": {"seeds": [1, 2]}}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Errorf("2-point sweep on a max-2 server: status=%d, want 202", resp2.StatusCode)
	}
}

// TestListJobs covers GET /v1/jobs: recency ordering, pagination, and
// parameter validation.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	workloads := []string{"gcc2k", "mcf", "sjeng"}
	ids := make([]string, len(workloads))
	for i, wl := range workloads {
		_, st := submit(t, ts, JobRequest{Workload: wl, Predictor: "lvp", Insts: 20_000})
		ids[i] = st.ID
		waitState(t, ts, st.ID, 30*time.Second, StateDone)
	}

	var list JobList
	get := func(query string, wantCode int) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET /v1/jobs%s status = %d, want %d", query, resp.StatusCode, wantCode)
		}
		if wantCode == http.StatusOK {
			list = JobList{}
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
		}
	}

	get("", http.StatusOK)
	if list.Total != 3 || len(list.Jobs) != 3 {
		t.Fatalf("list = total %d / %d rows, want 3/3", list.Total, len(list.Jobs))
	}
	// Most recent first, each with state + spec hash.
	for i, j := range list.Jobs {
		if j.ID != ids[len(ids)-1-i] {
			t.Errorf("row %d = %s, want %s (most recent first)", i, j.ID, ids[len(ids)-1-i])
		}
		if j.State != StateDone || j.SpecHash == "" || j.Workload == "" {
			t.Errorf("row %d missing fields: %+v", i, j)
		}
	}

	get("?limit=2", http.StatusOK)
	if len(list.Jobs) != 2 || list.Jobs[0].ID != ids[2] {
		t.Errorf("limit=2 returned %d rows starting %s", len(list.Jobs), list.Jobs[0].ID)
	}
	get("?limit=2&offset=2", http.StatusOK)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != ids[0] || list.Total != 3 {
		t.Errorf("offset page = %+v, want the oldest job only", list.Jobs)
	}
	get("?offset=99", http.StatusOK)
	if len(list.Jobs) != 0 {
		t.Errorf("past-the-end offset returned %d rows", len(list.Jobs))
	}
	get("?limit=0", http.StatusBadRequest)
	get("?limit=9999", http.StatusBadRequest)
	get("?offset=-1", http.StatusBadRequest)
}

func ExampleJobRequest_ResolveSpec() {
	r := JobRequest{Workload: "gcc2k"}
	sim, _ := r.ResolveSpec(spec.Defaults{Insts: 200_000, Seed: 0xC0FFEE})
	fmt.Println(len(sim.CanonicalHash()))
	// Output: 16
}
