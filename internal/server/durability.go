package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/spec"
	"repro/internal/store"
)

// persistAccepted records an admitted job in the WAL. The append is
// durable (fsynced) on return: from this point a crash re-enqueues the
// job on restart. No-op without a data dir.
func (s *Server) persistAccepted(j *job) error {
	if s.st == nil || s.crashed.Load() {
		return nil
	}
	raw, err := json.Marshal(j.sim)
	if err != nil {
		return fmt.Errorf("server: encoding spec for WAL: %w", err)
	}
	return s.st.AppendJobAccepted(j.id, j.tenant, j.key, raw, j.label, j.timeoutMS)
}

// persistTerminal records a job's terminal transition: done jobs also
// land in the result warehouse (keyed by spec hash, linked to the
// job's trace), failed and canceled jobs just settle the WAL entry so
// a restart does not resurrect them. Persistence failures are logged,
// not fatal — the job already settled in memory, and the worst case is
// a re-run after restart, which the spec-hash cache identity absorbs.
func (s *Server) persistTerminal(j *job, state, errMsg string, res *RunResult) {
	if s.st == nil || s.crashed.Load() {
		return
	}
	var err error
	switch state {
	case StateDone:
		if res != nil {
			if rerr := s.warehousePut(j, res); rerr != nil {
				s.log.Error("warehouse put failed", "id", j.id, "err", rerr)
			}
		}
		err = s.st.AppendJobDone(j.id, j.key)
	case StateFailed:
		err = s.st.AppendJobFailed(j.id, j.key, errMsg)
		s.dumpFlight(j, StateFailed)
	case StateCanceled:
		err = s.st.AppendJobCanceled(j.id, j.key)
		s.dumpFlight(j, StateCanceled)
	}
	if err != nil {
		s.log.Error("wal append failed", "id", j.id, "state", state, "err", err)
	}
}

// warehousePut retains a finished result beyond the LRU cache.
func (s *Server) warehousePut(j *job, res *RunResult) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	j.mu.Lock()
	traceID := j.traceID
	j.mu.Unlock()
	workload := res.Workload // the mix label ("a+b") for SMT runs
	if workload == "" {
		workload = j.sim.Workload.Name
	}
	return s.st.Warehouse().Put(store.RunRecord{
		SpecHash:  j.key,
		Tenant:    j.tenant,
		Workload:  workload,
		Predictor: j.label,
		TraceID:   traceID,
		Time:      time.Now().UTC(),
		Result:    raw,
		Contexts:  res.Contexts,
	})
}

// replay folds the WAL into owed work: every job accepted but not
// settled by the previous process is re-registered under its original
// ID and re-enqueued — or settled straight from the warehouse when an
// equivalent spec finished in the meantime. Jobs whose recorded spec
// no longer parses or validates are settled as failed rather than
// wedging the log forever.
func (s *Server) replay() error {
	st := s.st.State()
	s.mu.Lock()
	if st.MaxJobID > s.nextID {
		s.nextID = st.MaxJobID
	}
	s.mu.Unlock()

	for _, pj := range st.PendingJobs {
		var sim spec.Sim
		err := json.Unmarshal(pj.Spec, &sim)
		if err == nil {
			err = sim.Validate()
		}
		if err != nil {
			s.log.Warn("replay: settling unusable job as failed", "id", pj.ID, "err", err)
			if aerr := s.st.AppendJobFailed(pj.ID, pj.SpecHash, "replay: "+err.Error()); aerr != nil {
				return aerr
			}
			continue
		}
		tn, ok := s.tenants.ByName(pj.Tenant)
		if !ok {
			tn = s.tenants.Default()
		}
		j := s.restoreJob(pj.ID, tn.Name, sim, pj.Label, pj.TimeoutMS)

		// An equivalent spec may have finished before the crash (or in
		// another deployment sharing the warehouse): settle without
		// re-simulating — the spec hash makes re-execution idempotent,
		// and the warehouse makes it unnecessary.
		if res, ok := s.lookupResult(j.key); ok {
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			j.transition(StateDone, "", &res)
			s.mDone.Inc()
			if aerr := s.st.AppendJobDone(j.id, j.key); aerr != nil {
				return aerr
			}
			continue
		}

		// Accepted work is owed: replay bypasses the tenant's queue
		// share (maxQueued 0) so a now-shrunken quota cannot shed jobs
		// the previous process already promised.
		if err := s.sched.Enqueue(tn, j, float64(sim.Workload.Insts), 0); err != nil {
			return fmt.Errorf("server: replaying job %s: %w", pj.ID, err)
		}
		s.mQueueDepth.Add(1)
		s.log.Info("replay: re-enqueued job", "id", j.id, "spec", j.key, "tenant", j.tenant)
	}
	return nil
}

// restoreJob registers a replayed job under its WAL-recorded ID.
func (s *Server) restoreJob(id, tenantName string, sim spec.Sim, label string, timeoutMS int64) *job {
	ctx, cancel := context.WithCancel(s.lifeCtx)
	s.mu.Lock()
	j := &job{
		id:        id,
		sim:       sim,
		label:     label,
		timeoutMS: timeoutMS,
		tenant:    tenantName,
		key:       sim.CanonicalHash(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	if n := sim.Machine.NumContexts(); n > 1 {
		j.progRows = make([]cpu.Progress, n)
	}
	j.flight.note("replayed from WAL")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	return j
}
