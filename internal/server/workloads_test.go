package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/tracein"
)

// encodeWorkload returns a tracein container holding the first n
// instructions of a synthetic workload — the stand-in for a real
// CVP-1 trace in upload tests.
func encodeWorkload(t *testing.T, name string, n uint64) []byte {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	var buf bytes.Buffer
	if _, err := tracein.Encode(&buf, w.Build(n)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUploadWorkload covers POST /v1/workloads end to end: a trace
// file uploads to a content-addressed "ext:" workload, the workload is
// immediately runnable by the job engine, results carry the external
// name through the warehouse ?source= filter, and malformed bodies are
// rejected without registering anything.
func TestUploadWorkload(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, TraceCacheDir: dir, DataDir: dir})

	const insts = 20_000
	data := encodeWorkload(t, "gcc2k", insts)
	resp, err := ts.Client().Post(ts.URL+"/v1/workloads", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var up WorkloadUpload
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d, want 201", resp.StatusCode)
	}
	t.Cleanup(func() { trace.UnregisterExternal(up.Workload) })
	if !strings.HasPrefix(up.Workload, trace.ExternalPrefix) {
		t.Fatalf("workload %q lacks %q prefix", up.Workload, trace.ExternalPrefix)
	}
	if up.Insts != insts {
		t.Fatalf("insts = %d, want %d", up.Insts, insts)
	}
	// Encodes of synthetic generators carry the fill seed, so the
	// pre-image reconstructs without a single backfilled byte.
	if up.BackfilledBytes != 0 || up.InconsistentLoads != 0 {
		t.Fatalf("reconstruction not clean: %+v", up)
	}
	if up.Artifact != trace.ArtifactKey(up.Workload, insts) {
		t.Fatalf("artifact = %q, want %q", up.Artifact, trace.ArtifactKey(up.Workload, insts))
	}

	// Re-uploading the same bytes lands on the same content address.
	resp, err = ts.Client().Post(ts.URL+"/v1/workloads", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var again WorkloadUpload
	json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || again.Workload != up.Workload {
		t.Fatalf("re-upload: status %d workload %q, want 201 %q", resp.StatusCode, again.Workload, up.Workload)
	}

	// The workload list now advertises the external name.
	lresp, err := ts.Client().Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var listing map[string]json.RawMessage
	json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if _, ok := listing["external"]; !ok {
		t.Fatalf("GET /v1/workloads missing external section: %v", listing)
	}

	// The uploaded workload runs like any synthetic one.
	jresp, st := submit(t, ts, JobRequest{Workload: up.Workload, Predictor: "lvp", Insts: insts})
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit external workload: status %d", jresp.StatusCode)
	}
	waitState(t, ts, st.ID, 30*time.Second, StateDone)

	// And its result is selectable by provenance.
	for q, wantN := range map[string]int{"external": 1, "synthetic": 0} {
		rresp, err := ts.Client().Get(ts.URL + "/v1/runs?source=" + q)
		if err != nil {
			t.Fatal(err)
		}
		var rl RunList
		json.NewDecoder(rresp.Body).Decode(&rl)
		rresp.Body.Close()
		if len(rl.Runs) != wantN {
			t.Fatalf("runs?source=%s returned %d, want %d", q, len(rl.Runs), wantN)
		}
	}
	if rresp, err := ts.Client().Get(ts.URL + "/v1/runs?source=bogus"); err != nil {
		t.Fatal(err)
	} else {
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("runs?source=bogus: status %d, want 400", rresp.StatusCode)
		}
	}

	text := metricsText(t, ts)
	if !strings.Contains(text, "lvpd_trace_uploads_total 2") {
		t.Fatalf("metrics missing upload counter:\n%s", text)
	}

	// Garbage is rejected before anything registers.
	before := len(trace.ExternalNames())
	gresp, err := ts.Client().Post(ts.URL+"/v1/workloads", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload: status %d, want 422", gresp.StatusCode)
	}
	if after := len(trace.ExternalNames()); after != before {
		t.Fatalf("garbage upload registered a workload: %d -> %d", before, after)
	}
}

// TestUploadWorkloadSurvivesRestart pins persistence: a server
// restarted over the same trace cache dir rehydrates uploaded traces
// and runs them without re-upload.
func TestUploadWorkloadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, TraceCacheDir: dir})

	const insts = 20_000
	data := encodeWorkload(t, "mcf", insts)
	resp, err := ts.Client().Post(ts.URL+"/v1/workloads", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var up WorkloadUpload
	json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d, want 201", resp.StatusCode)
	}
	t.Cleanup(func() { trace.UnregisterExternal(up.Workload) })

	// Simulate a restart: drop the in-process registration, then boot a
	// fresh server over the same cache dir.
	trace.UnregisterExternal(up.Workload)
	_, ts2 := newTestServer(t, Config{Workers: 1, TraceCacheDir: dir})
	_, st := submit(t, ts2, JobRequest{Workload: up.Workload, Predictor: "lvp", Insts: insts})
	waitState(t, ts2, st.ID, 30*time.Second, StateDone)
	text := metricsText(t, ts2)
	if !strings.Contains(text, "lvpd_trace_artifact_generated_total 0") {
		t.Fatalf("restarted server regenerated the external stream:\n%s", text)
	}
}
