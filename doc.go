// Package repro is a from-scratch Go reproduction of Sheikh & Hower,
// "Efficient Load Value Prediction using Multiple Predictors and
// Filters" (HPCA 2019): four component load value predictors (LVP, SAP,
// CVP, CAP), the composite predictor with accuracy monitors, smart
// training and table fusion, the EVES baseline, and the cycle-level
// out-of-order core model and synthetic workload suite they are
// evaluated on.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the paper-vs-measured record of
// every table and figure. The benchmarks in bench_test.go regenerate
// each experiment; cmd/experiments renders them.
package repro
