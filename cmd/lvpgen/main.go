// Command lvpgen inspects the synthetic workload suite: instruction
// mix, static load counts, memory footprint, oracle pattern
// classification, and (optionally) a readable dump of the stream —
// useful when validating that a workload exercises the intended load
// patterns.
//
//	lvpgen                       # summary table for all 85 workloads
//	lvpgen -workload mcf         # one workload in detail
//	lvpgen -workload mcf -dump 40
//	lvpgen -workload mcf -insts 200000 -encode mcf.lvpx
//
// -encode exports a workload as a CVP-1-style external trace file
// (internal/tracein format), the same container the daemon's
// POST /v1/workloads upload endpoint and lvpsim -trace consume — handy
// for exercising the ingestion path end to end with a known-good
// stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/oracle"
	"repro/internal/trace"
	"repro/internal/tracein"
)

func main() {
	var (
		workload = flag.String("workload", "", "inspect a single workload (default: all)")
		insts    = flag.Uint64("insts", 100_000, "instructions to analyze")
		dump     = flag.Int("dump", 0, "print the first N instructions")
		encode   = flag.String("encode", "", "export the workload as a CVP-1-style trace file (requires -workload)")
	)
	flag.Parse()

	if *encode != "" {
		w, ok := trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "-encode requires a known -workload (got %q)\n", *workload)
			os.Exit(2)
		}
		f, err := os.Create(*encode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := tracein.Encode(f, w.Build(*insts))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("encoded %d instructions of %s to %s\n", n, w.Name, *encode)
		return
	}

	if *workload != "" {
		w, ok := trace.ByName(*workload)
		if !ok {
			fmt.Printf("unknown workload %q\n", *workload)
			return
		}
		inspect(w, *insts, *dump)
		return
	}

	fmt.Printf("%-12s %-9s %6s %6s %6s %7s %7s %8s %8s %8s\n",
		"workload", "profile", "load%", "store%", "br%", "statLd", "footKB",
		"P1%", "P2%", "P3%")
	for _, w := range trace.Workloads() {
		s := analyze(w, *insts)
		fmt.Printf("%-12s %-9s %5.1f%% %5.1f%% %5.1f%% %7d %6.0f %7.1f%% %7.1f%% %7.1f%%\n",
			w.Name, w.Profile, s.loadPct, s.storePct, s.branchPct, s.staticLoads,
			s.footprintKB, s.p1, s.p2, s.p3)
	}
}

type summary struct {
	loadPct, storePct, branchPct float64
	staticLoads                  int
	footprintKB                  float64
	p1, p2, p3                   float64
}

func analyze(w trace.Workload, insts uint64) summary {
	gen := w.Build(insts)
	var in trace.Inst
	var loads, stores, branches, total uint64
	staticLoads := map[uint64]bool{}
	lines := map[uint64]bool{}
	for gen.Next(&in) {
		total++
		switch in.Op {
		case trace.OpLoad:
			loads++
			staticLoads[in.PC] = true
			lines[in.Addr>>6] = true
		case trace.OpStore:
			stores++
			lines[in.Addr>>6] = true
		}
		if in.IsBranch() {
			branches++
		}
	}
	cls := oracle.Classify(w.Build(insts), 0)
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(total) }
	return summary{
		loadPct: pct(loads), storePct: pct(stores), branchPct: pct(branches),
		staticLoads: len(staticLoads),
		footprintKB: float64(len(lines)) * 64 / 1024,
		p1:          100 * cls.Fraction(oracle.Pattern1),
		p2:          100 * cls.Fraction(oracle.Pattern2),
		p3:          100 * cls.Fraction(oracle.Pattern3),
	}
}

func inspect(w trace.Workload, insts uint64, dump int) {
	s := analyze(w, insts)
	fmt.Printf("workload %s (profile %s, %d instructions)\n", w.Name, w.Profile, insts)
	fmt.Printf("  mix: %.1f%% loads, %.1f%% stores, %.1f%% branches\n", s.loadPct, s.storePct, s.branchPct)
	fmt.Printf("  static loads: %d   data footprint: %.0fKB\n", s.staticLoads, s.footprintKB)
	fmt.Printf("  oracle: Pattern-1 %.1f%%  Pattern-2 %.1f%%  Pattern-3 %.1f%%\n", s.p1, s.p2, s.p3)
	if dump <= 0 {
		return
	}
	fmt.Println("\nfirst instructions:")
	gen := w.Build(uint64(dump))
	var in trace.Inst
	i := 0
	for gen.Next(&in) {
		switch {
		case in.Op == trace.OpLoad:
			fmt.Printf("  %3d %#08x load  r%-2d <- [%#x] = %#x (%dB)\n", i, in.PC, in.Dst, in.Addr, in.Value, in.Size)
		case in.Op == trace.OpStore:
			fmt.Printf("  %3d %#08x store [%#x] <- %#x (%dB)\n", i, in.PC, in.Addr, in.Value, in.Size)
		case in.IsBranch():
			fmt.Printf("  %3d %#08x %-5s taken=%-5v -> %#x\n", i, in.PC, in.Op, in.Taken, in.Target)
		default:
			fmt.Printf("  %3d %#08x %-5s r%d <- r%d, r%d (lat %d)\n", i, in.PC, in.Op, in.Dst, in.Src1, in.Src2, in.Lat)
		}
		i++
	}
}
