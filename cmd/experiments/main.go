// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5
//	experiments -run all -insts 200000
//	experiments -run tablevi -sample 12
//	experiments -spec sim.json            # run a custom spec over the pool
//	experiments -spec sim.json -dump-spec # print its canonical form
//
// Every run is deterministic for a given -seed. Heavy sweeps (Table VI,
// Figures 3, 5, 7-10) honour -sample to restrict the workload pool to a
// stratified subset; -sample 0 uses all 85 workloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/prof"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment ID (see -list), comma list, or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		insts    = flag.Uint64("insts", 100_000, "instructions simulated per workload")
		seed     = flag.Uint64("seed", 0xC0FFEE, "simulation seed")
		sample   = flag.Int("sample", 16, "workload subsample for heavy sweeps (0 = all)")
		specFile = flag.String("spec", "", "run this spec JSON file over the pool instead of a named experiment")
		dumpSpec = flag.Bool("dump-spec", false, "print the resolved canonical spec as JSON and exit")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *specFile != "" || *dumpSpec {
		runSpec(*specFile, *dumpSpec, *insts, *seed, *sample, *parallel)
		return
	}

	if *list || *run == "" {
		fmt.Println("experiments — regenerate the paper's tables and figures")
		for _, l := range expt.Describe() {
			fmt.Println("  " + l)
		}
		fmt.Println("  all      run everything")
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range expt.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	full, err := expt.NewContextErr(expt.Options{Insts: *insts, Seed: *seed, Parallel: *parallel})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sampled := full
	if *sample > 0 {
		sampled, err = expt.NewContextErr(expt.Options{
			Insts: *insts, Seed: *seed, Parallel: *parallel,
			Workloads: sampleWorkloads(*sample),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	for _, id := range ids {
		e, ok := expt.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		ctx := full
		if e.Heavy && *sample > 0 {
			ctx = sampled
		}
		start := time.Now()
		res := e.Run(ctx)
		fmt.Print(res)
		fmt.Printf("(%d workloads × %d instructions, %.1fs)\n\n",
			len(ctx.Pool()), ctx.Insts(), time.Since(start).Seconds())
	}
}

// runSpec handles -spec/-dump-spec: resolve a declarative simulation
// spec (internal/spec) and either print its canonical form or run it
// over the (possibly sampled) workload pool, reporting per-workload
// speedups and the paper-convention aggregate.
func runSpec(specFile string, dump bool, insts, seed uint64, sample, parallel int) {
	var sim spec.Sim
	if specFile != "" {
		b, err := os.ReadFile(specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := json.Unmarshal(b, &sim); err != nil {
			fmt.Fprintf(os.Stderr, "parsing %s: %v\n", specFile, err)
			os.Exit(2)
		}
	}
	// The pool supplies the workloads; the context supplies insts/seed.
	sim.Workload = spec.WorkloadSpec{}
	sim.Run = spec.RunSpec{}
	sim.Normalize(spec.Defaults{})
	if err := sim.ValidateConfig(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sim); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "canonical hash: %s\n", sim.CanonicalHash())
		return
	}

	opts := expt.Options{Insts: insts, Seed: seed, Parallel: parallel}
	if sample > 0 {
		opts.Workloads = sampleWorkloads(sample)
	}
	ctx, err := expt.NewContextErr(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	label := string(sim.Predictor.Family)
	start := time.Now()
	pairs := ctx.RunSim(sim, label)
	for _, p := range pairs {
		fmt.Printf("  %-14s speedup=%+7.2f%%  coverage=%5.1f%%  accuracy=%.4f\n",
			p.Workload, p.Speedup(), p.Run.Coverage(), p.Run.Accuracy())
	}
	agg := expt.Summarize(pairs)
	fmt.Printf("%s (hash %s): speedup=%+.2f%% coverage=%.1f%% accuracy=%.4f\n",
		label, sim.CanonicalHash(), agg.Speedup, agg.Coverage, agg.Accuracy)
	fmt.Printf("(%d workloads × %d instructions, %.1fs)\n",
		len(ctx.Pool()), ctx.Insts(), time.Since(start).Seconds())
}

// sampleWorkloads picks a stratified subset: round-robin across the
// sorted pool so every behaviour profile stays represented.
func sampleWorkloads(n int) []string {
	all := trace.Names()
	if n >= len(all) {
		return all
	}
	out := make([]string, 0, n)
	step := float64(len(all)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}
