// Command benchgate is the hot-path benchmark regression gate: it runs
// the pipeline benchmarks and compares them against the most recent
// entry of the BENCH_hotpath.json trajectory, failing (exit 1) when a
// benchmark regresses past the tolerance or allocates more per op than
// the recorded entry.
//
// The trajectory records medians from a fixed reference box, so the
// tolerance has two jobs: absorbing run-to-run noise on that box
// (-tolerance 0.15 locally) and absorbing hardware differences when the
// gate runs elsewhere (CI passes a wider bound). Allocations are
// machine-independent and always gated exactly: a recorded 0 allocs/op
// must stay 0.
//
// Usage:
//
//	go run ./cmd/benchgate [-file BENCH_hotpath.json] [-bench Pipeline]
//	    [-benchtime 5x] [-count 3] [-tolerance 0.15] [-pkg .]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type benchEntry struct {
	MsPerOp     float64 `json:"ms_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type trajectoryEntry struct {
	Commit     string                `json:"commit"`
	PR         string                `json:"pr"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchFile struct {
	Trajectory []trajectoryEntry `json:"trajectory"`
}

// benchLine matches one `go test -bench` result line, tolerating the
// GOMAXPROCS suffix, custom metrics between the standard columns (the
// pipeline benchmarks report MB/s), and the optional -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+(\d+) allocs/op)?`)

// measured is the best (minimum) observed result per benchmark across
// -count repetitions: minimum ns/op is the standard way to strip
// scheduler noise from a shared box, while allocations are taken at the
// maximum (any repetition allocating is a real allocation).
type measured struct {
	nsPerOp  float64
	allocsOp int64
	haveMem  bool
}

func main() {
	var (
		file      = flag.String("file", "BENCH_hotpath.json", "trajectory file with the reference entry")
		bench     = flag.String("bench", "Pipeline", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "5x", "per-benchmark benchtime")
		count     = flag.Int("count", 3, "repetitions; the minimum ns/op is compared")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ms/op regression vs the reference entry")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
	)
	flag.Parse()

	ref, refLabel, err := loadReference(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	args := []string{"test", "-run=NONE", "-bench=" + *bench,
		"-benchtime=" + *benchtime, "-count=" + strconv.Itoa(*count), "-benchmem", *pkg}
	fmt.Println("benchgate: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	os.Stdout.Write(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: benchmark run failed:", err)
		os.Exit(2)
	}

	got := parseBench(string(out))
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results parsed")
		os.Exit(2)
	}

	fmt.Printf("benchgate: comparing against %s (tolerance %.0f%%)\n", refLabel, *tolerance*100)
	failed := false
	for name, want := range ref {
		m, ok := got[name]
		if !ok {
			fmt.Printf("  %-28s SKIP (not run under -bench=%s)\n", name, *bench)
			continue
		}
		gotMs := m.nsPerOp / 1e6
		limit := want.MsPerOp * (1 + *tolerance)
		verdict := "ok"
		if gotMs > limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-28s %8.2f ms/op  (ref %.2f, limit %.2f)  %s\n",
			name, gotMs, want.MsPerOp, limit, verdict)
		if m.haveMem && float64(m.allocsOp) > want.AllocsPerOp {
			fmt.Printf("  %-28s %8d allocs/op (ref %.0f)  ALLOC REGRESSION\n",
				name, m.allocsOp, want.AllocsPerOp)
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// loadReference returns the benchmarks of the newest trajectory entry.
func loadReference(path string) (map[string]benchEntry, string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, "", fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(f.Trajectory) == 0 {
		return nil, "", fmt.Errorf("%s has no trajectory entries", path)
	}
	last := f.Trajectory[len(f.Trajectory)-1]
	if len(last.Benchmarks) == 0 {
		return nil, "", fmt.Errorf("%s: newest entry %q has no benchmarks", path, last.Commit)
	}
	return last.Benchmarks, fmt.Sprintf("%q (%s)", last.Commit, last.PR), nil
}

// parseBench folds repeated -count lines into the min ns/op (and max
// allocs/op) per benchmark name.
func parseBench(out string) map[string]measured {
	got := make(map[string]measured)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		cur, seen := got[m[1]]
		if !seen || ns < cur.nsPerOp {
			cur.nsPerOp = ns
		}
		if m[4] != "" {
			allocs, _ := strconv.ParseInt(m[4], 10, 64)
			if allocs > cur.allocsOp {
				cur.allocsOp = allocs
			}
			cur.haveMem = true
		}
		got[m[1]] = cur
	}
	return got
}
