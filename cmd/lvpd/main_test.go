package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
)

// buildDaemon compiles the lvpd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lvpd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe port: %v", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// startDaemon launches the built binary and waits for /healthz.
func startDaemon(t *testing.T, bin string, port int, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", fmt.Sprintf("127.0.0.1:%d", port)}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start lvpd: %v", err)
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	_, _ = cmd.Process.Wait()
	t.Fatalf("lvpd on port %d never became healthy", port)
	return nil
}

func killHard(cmd *exec.Cmd) {
	_ = cmd.Process.Kill() // SIGKILL: no drain, no WAL settle
	_, _ = cmd.Process.Wait()
}

// crashSweep is the 6-point sweep the crash test journals and resumes.
func crashSweep() []byte {
	return []byte(`{
		"template": {"insts": 1000000},
		"axes": {"workloads": ["gcc2k", "mcf"], "predictors": ["lvp", "sap", "cvp"]}
	}`)
}

// submitSweep posts the sweep and returns the accepted spec hashes.
func submitSweep(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(crashSweep()))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, body)
	}
	var sr server.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	if sr.Rejected != 0 {
		t.Fatalf("sweep shed %d points; the test needs all accepted", sr.Rejected)
	}
	hashes := make([]string, 0, len(sr.Jobs))
	for _, j := range sr.Jobs {
		if j.SpecHash == "" {
			t.Fatalf("job without spec hash: %+v", j)
		}
		hashes = append(hashes, j.SpecHash)
	}
	return hashes
}

// awaitRuns polls GET /v1/runs until every hash has a retained result.
func awaitRuns(t *testing.T, base string, hashes []string) map[string]server.RunResult {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs?limit=500")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		var list server.RunList
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode run list: %v", err)
		}
		got := make(map[string]server.RunResult, len(list.Runs))
		for _, r := range list.Runs {
			if r.Result != nil {
				got[r.SpecHash] = *r.Result
			}
		}
		all := true
		for _, h := range hashes {
			if _, ok := got[h]; !ok {
				all = false
				break
			}
		}
		if all {
			return got
		}
		time.Sleep(100 * time.Millisecond)
	}
	jobs, _ := http.Get(base + "/v1/jobs")
	var dump []byte
	if jobs != nil {
		dump, _ = io.ReadAll(jobs.Body)
		jobs.Body.Close()
	}
	t.Fatalf("runs never completed; job state: %s", dump)
	return nil
}

// stripTiming zeroes the wall-clock-dependent result fields; everything
// else is a pure function of the canonical spec and must match exactly
// across processes.
func stripTiming(r server.RunResult) server.RunResult {
	r.SimInstructions = 0
	r.SimMIPS = 0
	return r
}

// TestCrashRecoveryEndToEnd is the durability acceptance test at the
// process level: a real lvpd daemon accepts a sweep, dies from SIGKILL
// mid-execution, restarts on the same -data-dir, and must finish every
// accepted point with results bit-identical to an undisturbed run.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the real binary")
	}
	bin := buildDaemon(t)

	dataDir := t.TempDir()
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	daemonArgs := []string{"-data-dir", dataDir, "-workers", "1", "-queue", "64", "-max-insts", "5000000"}

	// Generation 1: accept the sweep, then die without warning. The 202
	// means every point is fsynced in the WAL.
	gen1 := startDaemon(t, bin, port, daemonArgs...)
	hashes := submitSweep(t, base)
	if len(hashes) != 6 {
		killHard(gen1)
		t.Fatalf("expected 6 sweep points, got %d", len(hashes))
	}
	killHard(gen1)

	// Generation 2: same data dir. Replay must finish all six points.
	gen2 := startDaemon(t, bin, port, daemonArgs...)
	defer killHard(gen2)
	recovered := awaitRuns(t, base, hashes)

	// Reference: an undisturbed daemon running the same sweep.
	refPort := freePort(t)
	refBase := fmt.Sprintf("http://127.0.0.1:%d", refPort)
	ref := startDaemon(t, bin, refPort, "-data-dir", t.TempDir(), "-workers", "1", "-queue", "64", "-max-insts", "5000000")
	defer killHard(ref)
	refHashes := submitSweep(t, refBase)
	reference := awaitRuns(t, refBase, refHashes)

	for _, h := range hashes {
		want, ok := reference[h]
		if !ok {
			t.Fatalf("reference run missing hash %s", h)
		}
		if got := recovered[h]; !reflect.DeepEqual(stripTiming(got), stripTiming(want)) {
			t.Errorf("recovered result for %s is not bit-identical:\n got %+v\nwant %+v", h, got, want)
		}
	}
}
