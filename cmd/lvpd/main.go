// Command lvpd runs the simulator as a resident job service: clients
// POST simulation requests to /v1/jobs, poll GET /v1/jobs/{id} for
// results, and scrape /metrics for fleet observability. See README.md
// ("Running as a service") for the endpoint reference.
//
// Usage:
//
//	lvpd -addr :8080
//	lvpd -addr :8080 -workers 8 -queue 128 -cache 4096 -job-timeout 1m
//
// The daemon drains in-flight jobs on SIGINT/SIGTERM, cancelling
// whatever is still running once -drain-timeout elapses.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		cacheSize    = flag.Int("cache", 1024, "result cache entries")
		defaultInsts = flag.Uint64("insts", 200_000, "default per-job instruction budget")
		maxInsts     = flag.Int64("max-insts", 5_000_000, "per-job instruction budget cap (-1 = unlimited)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "default per-job simulation deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheSize:    *cacheSize,
		DefaultInsts: *defaultInsts,
		MaxInsts:     *maxInsts,
		JobTimeout:   *jobTimeout,
		Logger:       log,
	})
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("lvpd listening", "addr", *addr)

	select {
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("job drain incomplete", "err", err)
	}
	log.Info("bye")
}
