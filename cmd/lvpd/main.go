// Command lvpd runs the simulator as a resident job service: clients
// POST simulation requests to /v1/jobs, poll GET /v1/jobs/{id} for
// results, and scrape /metrics for fleet observability. See README.md
// ("Running as a service") for the endpoint reference.
//
// Usage:
//
//	lvpd -addr :8080
//	lvpd -addr :8080 -workers 8 -queue 128 -cache 4096 -job-timeout 1m
//
// With -cluster the same binary becomes a sweep coordinator instead:
// it runs no simulations itself, but fans sweep points out across a
// fleet of ordinary lvpd workers registered via POST
// /v1/cluster/workers. A worker can self-register at startup with
// -join (and -advertise when its own -addr is not dialable as-is):
//
//	lvpd -cluster -addr :9000
//	lvpd -addr :8081 -join http://coordinator:9000 -advertise http://worker1:8081
//
// See README.md ("Running a cluster") for the full walkthrough.
//
// With -data-dir the process journals every accepted job and sweep to
// a write-ahead log under that directory and retains finished results
// in a result warehouse; a restart with the same directory resumes
// whatever the log still owes (see README.md "Durability"). With
// -tenants-file the /v1/ API requires per-tenant API keys and applies
// quotas and weighted fair queueing (README.md "Multi-tenant
// operation").
//
// The daemon drains in-flight jobs on SIGINT/SIGTERM, cancelling
// whatever is still running once -drain-timeout elapses.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	otrace "repro/internal/obs/trace"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "job queue depth (full queue returns 429)")
		cacheSize    = flag.Int("cache", 1024, "result cache entries")
		defaultInsts = flag.Uint64("insts", 200_000, "default per-job instruction budget")
		maxInsts     = flag.Int64("max-insts", 5_000_000, "per-job instruction budget cap (-1 = unlimited)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "default per-job simulation deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
		maxSweepPts  = flag.Int("max-sweep-points", 0, "sweep expansion cap (0 = mode default)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON (deprecated: use -log-format=json)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")

		// Durability and multi-tenancy (both modes).
		dataDir       = flag.String("data-dir", "", "durable store directory (WAL + result warehouse); empty = in-memory only")
		tenantsFile   = flag.String("tenants-file", "", "JSON tenants file enabling API-key auth, quotas, and fair queueing")
		traceCacheDir = flag.String("trace-cache-dir", "", "content-addressed recorded-trace artifact cache directory; empty = in-memory recordings only")

		// Observability plane (both modes).
		alertsFile  = flag.String("alerts-file", "", "JSON SLO alert rules evaluated over the embedded time-series store; empty disables alerting")
		checkAlerts = flag.Bool("check-alerts", false, "validate -alerts-file and exit (0 = valid)")
		obsScrape   = flag.Duration("obs-scrape-interval", 5*time.Second, "embedded metrics store scrape period")
		obsRetain   = flag.Duration("obs-retention", 15*time.Minute, "embedded metrics store retention window")

		// Coordinator mode.
		clusterMode   = flag.Bool("cluster", false, "run as a sweep coordinator instead of a simulation worker")
		workerSlots   = flag.Int("worker-slots", 4, "cluster: concurrent dispatches per worker")
		pointDeadline = flag.Duration("point-deadline", 5*time.Minute, "cluster: per-dispatch-attempt deadline")
		pointRetries  = flag.Int("point-retries", 5, "cluster: retries per point before it is marked failed")
		healthEvery   = flag.Duration("health-interval", 2*time.Second, "cluster: worker health probe period")
		quarAfter     = flag.Int("quarantine-after", 3, "cluster: consecutive failures before a worker is quarantined")
		quarCooldown  = flag.Duration("quarantine-cooldown", 30*time.Second, "cluster: circuit-open duration before a half-open probe")
		workerAPIKey  = flag.String("worker-api-key", "", "cluster: API key presented to workers on every dispatch (list it in their -tenants-file as a proxy tenant)")

		// Worker self-registration.
		joinURL      = flag.String("join", "", "coordinator URL to register with at startup (worker mode)")
		advertiseURL = flag.String("advertise", "", "URL the coordinator should dial for this worker (default derived from -addr)")
		joinAPIKey   = flag.String("join-api-key", "", "API key presented when self-registering with a key-protected coordinator")
	)
	flag.Parse()

	log, err := buildLogger(*logFormat, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *checkAlerts {
		if *alertsFile == "" {
			fmt.Fprintln(os.Stderr, "lvpd: -check-alerts needs -alerts-file")
			os.Exit(2)
		}
		rs, err := tsdb.LoadRules(*alertsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s: %d rules ok (interval %s)\n", *alertsFile, len(rs.Rules), rs.Interval())
		return
	}
	var alerts *tsdb.RuleSet
	if *alertsFile != "" {
		alerts, err = tsdb.LoadRules(*alertsFile)
		if err != nil {
			log.Error("bad alerts file", "err", err)
			os.Exit(2)
		}
	}

	var tenants *tenant.Registry
	if *tenantsFile != "" {
		tenants, err = tenant.Load(*tenantsFile)
		if err != nil {
			log.Error("bad tenants file", "err", err)
			os.Exit(2)
		}
	}

	if *clusterMode {
		runCoordinator(log, coordinatorFlags{
			addr:          *addr,
			defaultInsts:  *defaultInsts,
			maxInsts:      *maxInsts,
			cacheSize:     *cacheSize,
			maxSweepPts:   *maxSweepPts,
			workerSlots:   *workerSlots,
			pointDeadline: *pointDeadline,
			pointRetries:  *pointRetries,
			healthEvery:   *healthEvery,
			quarAfter:     *quarAfter,
			quarCooldown:  *quarCooldown,
			drainTimeout:  *drainTimeout,
			dataDir:       *dataDir,
			traceCacheDir: *traceCacheDir,
			workerAPIKey:  *workerAPIKey,
			tenants:       tenants,
			alerts:        alerts,
			obsScrape:     *obsScrape,
			obsRetain:     *obsRetain,
		})
		return
	}

	// In a fleet, name this worker's spans by the URL the coordinator
	// dials so merged traces get one track per worker.
	serviceName := ""
	if *joinURL != "" {
		serviceName = advertised(*advertiseURL, *addr)
	}
	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		DefaultInsts:   *defaultInsts,
		MaxInsts:       *maxInsts,
		JobTimeout:     *jobTimeout,
		MaxSweepPoints: *maxSweepPts,
		ServiceName:    serviceName,
		DataDir:        *dataDir,
		TraceCacheDir:  *traceCacheDir,
		Tenants:        tenants,
		Logger:         log,

		Alerts:            alerts,
		ObsScrapeInterval: *obsScrape,
		ObsRetention:      *obsRetain,
	})
	if err != nil {
		log.Error("bad configuration", "err", err)
		os.Exit(2)
	}
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("lvpd listening", "addr", *addr)

	if *joinURL != "" {
		go selfRegister(ctx, log, *joinURL, advertised(*advertiseURL, *addr), *joinAPIKey)
	}

	select {
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("job drain incomplete", "err", err)
	}
	log.Info("bye")
}

// buildLogger assembles the process logger: text or JSON at the chosen
// level, wrapped with trace correlation so every line logged under a
// traced request carries trace_id/span_id. The deprecated -log-json
// flag still forces JSON.
func buildLogger(format, level string, forceJSON bool) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("lvpd: -log-level must be debug, info, warn, or error; got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var handler slog.Handler
	switch strings.ToLower(format) {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	case "text", "":
		handler = slog.NewTextHandler(os.Stderr, opts)
		if forceJSON {
			handler = slog.NewJSONHandler(os.Stderr, opts)
		}
	default:
		return nil, fmt.Errorf("lvpd: -log-format must be text or json, got %q", format)
	}
	return slog.New(otrace.NewLogHandler(handler)), nil
}

type coordinatorFlags struct {
	addr          string
	defaultInsts  uint64
	maxInsts      int64
	cacheSize     int
	maxSweepPts   int
	workerSlots   int
	pointDeadline time.Duration
	pointRetries  int
	healthEvery   time.Duration
	quarAfter     int
	quarCooldown  time.Duration
	drainTimeout  time.Duration
	dataDir       string
	traceCacheDir string
	workerAPIKey  string
	tenants       *tenant.Registry
	alerts        *tsdb.RuleSet
	obsScrape     time.Duration
	obsRetain     time.Duration
}

func runCoordinator(log *slog.Logger, f coordinatorFlags) {
	coord, err := cluster.New(cluster.Config{
		DefaultInsts:       f.defaultInsts,
		MaxInsts:           f.maxInsts,
		CacheSize:          f.cacheSize,
		MaxSweepPoints:     f.maxSweepPts,
		WorkerSlots:        f.workerSlots,
		PointDeadline:      f.pointDeadline,
		PointRetries:       f.pointRetries,
		HealthInterval:     f.healthEvery,
		QuarantineAfter:    f.quarAfter,
		QuarantineCooldown: f.quarCooldown,
		DataDir:            f.dataDir,
		TraceCacheDir:      f.traceCacheDir,
		WorkerAPIKey:       f.workerAPIKey,
		Tenants:            f.tenants,
		Logger:             log,
		Alerts:             f.alerts,
		ObsScrapeInterval:  f.obsScrape,
		ObsRetention:       f.obsRetain,
	})
	if err != nil {
		log.Error("bad configuration", "err", err)
		os.Exit(2)
	}
	coord.Start()

	httpSrv := &http.Server{
		Addr:              f.addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("lvpd coordinator listening", "addr", f.addr)

	select {
	case err := <-errCh:
		log.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("shutting down", "drain_timeout", f.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := coord.Shutdown(drainCtx); err != nil {
		log.Warn("sweep drain incomplete", "err", err)
	}
	log.Info("bye")
}

// advertised derives the URL the coordinator should dial for this
// worker: -advertise verbatim when set, otherwise -addr with a
// localhost host filled in for bare ":8080"-style listen addresses.
func advertised(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

// selfRegister registers this worker with the coordinator, retrying
// with a flat delay until it succeeds or the process is shutting down.
// Registration is idempotent on the coordinator, so retrying after an
// ambiguous failure is safe.
func selfRegister(ctx context.Context, log *slog.Logger, coordinator, advertise, apiKey string) {
	body, _ := json.Marshal(map[string]string{"url": advertise})
	target := strings.TrimSuffix(coordinator, "/") + "/v1/cluster/workers"
	for {
		err := postRegistration(ctx, target, body, apiKey)
		if err == nil {
			log.Info("registered with coordinator", "coordinator", coordinator, "advertise", advertise)
			return
		}
		log.Warn("coordinator registration failed; retrying", "coordinator", coordinator, "err", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Second):
		}
	}
}

func postRegistration(ctx context.Context, target string, body []byte, apiKey string) error {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("coordinator returned %d", resp.StatusCode)
	}
	return nil
}
