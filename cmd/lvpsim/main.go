// Command lvpsim simulates one workload on the baseline core with a
// selectable load value predictor and prints the run's metrics.
//
// Usage:
//
//	lvpsim -workload gcc2k -predictor composite -entries 1024
//	lvpsim -workload mcf -predictor lvp -entries 4096 -insts 500000
//	lvpsim -workload v8 -predictor eves -budget 32
//	lvpsim -workloads            # list workload names
//
// Predictors: none, lvp, sap, cvp, cap, composite, best (composite +
// PC-AM + smart training + fusion), eves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eves"
	"repro/internal/prof"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
)

// buildGen returns the instruction source: a live workload generator,
// or a recorded trace when -replay is given.
func buildGen(workload string, insts uint64, replay string) (trace.Generator, string, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, "", err
		}
		rd, err := trace.NewTraceReader(f)
		if err != nil {
			return nil, "", err
		}
		return rd, replay, nil
	}
	w, ok := trace.ByName(workload)
	if !ok {
		return nil, "", fmt.Errorf("unknown workload %q (see -workloads)", workload)
	}
	return w.Build(insts), w.Name, nil
}

func main() {
	var (
		workload  = flag.String("workload", "gcc2k", "workload name")
		listNames = flag.Bool("workloads", false, "list workload names and exit")
		predictor = flag.String("predictor", "composite", "none|lvp|sap|cvp|cap|composite|best|eves")
		entries   = flag.Int("entries", 1024, "table entries per component")
		budget    = flag.Int("budget", 32, "EVES budget in KB (0 = infinite)")
		insts     = flag.Uint64("insts", 200_000, "instructions to simulate")
		seed      = flag.Uint64("seed", 0xC0FFEE, "simulation seed")
		am        = flag.String("am", "pc", "accuracy monitor for composite: none|m|pc|pcinf")
		details   = flag.Bool("details", false, "print per-component composite statistics")
		record    = flag.String("record", "", "record the workload's trace to this file and exit")
		replay    = flag.String("replay", "", "simulate a recorded trace file instead of a workload")
		jsonOut   = flag.Bool("json", false, "emit the run result as one JSON object on stdout")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *listNames {
		for _, n := range trace.Names() {
			fmt.Println(n)
		}
		return
	}

	if *record != "" {
		w, ok := trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (see -workloads)\n", *workload)
			os.Exit(2)
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := trace.WriteTrace(f, w.Build(*insts), trace.FillSeed(w.Name))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", n, w.Name, *record)
		return
	}

	newGen := func() trace.Generator {
		gen, _, err := buildGen(*workload, *insts, *replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return gen
	}
	name := *workload
	if *replay != "" {
		name = *replay
	}

	// emitJSON prints the run/baseline pair in the service's response
	// schema (internal/server.RunResult), keeping CLI and daemon
	// outputs field-for-field identical.
	emitJSON := func(run, base stats.Run, comp *core.Composite) {
		res := server.NewRunResult(run, base, comp)
		res.Predictor = *predictor // echo the flag, not the run's config label
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// One pooled pipeline serves both runs: Reset swaps the engine in
	// without reallocating the core's tables.
	pipe := cpu.Acquire(cpu.DefaultConfig(), nil)
	defer cpu.Release(pipe)
	base := pipe.Run(newGen(), name, "baseline")
	if !*jsonOut {
		fmt.Printf("baseline:  IPC=%.3f (%d instructions, %d cycles, %d loads)\n",
			base.IPC(), base.Instructions, base.Cycles, base.Loads)
	}
	if *predictor == "none" {
		if *jsonOut {
			emitJSON(base, base, nil)
		}
		return
	}

	var (
		engine cpu.Engine
		comp   *core.Composite
	)
	mkComposite := func(e [core.NumComponents]int, amSel string, smart, fusion bool) {
		cfg := core.CompositeConfig{Entries: e, Seed: *seed, SmartTraining: smart}
		switch amSel {
		case "m":
			cfg.AM = core.NewMAM()
		case "pc":
			cfg.AM = core.NewPCAM(64)
		case "pcinf":
			cfg.AM = core.NewPCAM(0)
		}
		if fusion {
			cfg.Fusion = core.DefaultFusion()
		}
		comp = core.NewComposite(cfg)
		engine = cpu.NewCompositeEngine(comp)
	}
	single := func(c core.Component) {
		var e [core.NumComponents]int
		e[c] = *entries
		mkComposite(e, "", false, false)
	}
	switch *predictor {
	case "lvp":
		single(core.CompLVP)
	case "sap":
		single(core.CompSAP)
	case "cvp":
		single(core.CompCVP)
	case "cap":
		single(core.CompCAP)
	case "composite":
		mkComposite(core.HomogeneousEntries(*entries), *am, false, false)
	case "best":
		mkComposite(core.HomogeneousEntries(*entries), "pc", true, true)
	case "eves":
		engine = eves.New(eves.Config{BudgetKB: *budget, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown predictor %q\n", *predictor)
		os.Exit(2)
	}

	pipe.Reset(cpu.DefaultConfig(), engine)
	run := pipe.Run(newGen(), name, *predictor)
	if *jsonOut {
		emitJSON(run, base, comp)
		return
	}
	fmt.Printf("%-9s  IPC=%.3f  speedup=%+.2f%%  coverage=%.1f%%  accuracy=%.4f\n",
		*predictor+":", run.IPC(), stats.Speedup(run, base), run.Coverage(), run.Accuracy())
	fmt.Printf("           flushes: value=%d branch=%d memorder=%d\n",
		run.VPFlushes, run.BranchFlushes, run.MemOrderFlushes)

	if *details && comp != nil {
		st := comp.Stats()
		fmt.Printf("           predicted loads: %d of %d probes; multi-confident: %d\n",
			st.PredictedLoads, st.Probes,
			st.ConfidentHistogram[2]+st.ConfidentHistogram[3]+st.ConfidentHistogram[4])
		for c := core.Component(0); c < core.NumComponents; c++ {
			if comp.Component(c) == nil {
				continue
			}
			fmt.Printf("           %v: used=%d correct=%d incorrect=%d\n",
				c, st.UsedBy[c], st.CorrectBy[c], st.IncorrectBy[c])
		}
		fmt.Printf("           storage: %.2fKB\n", comp.StorageKB())
	}
}
