// Command lvpsim simulates one workload on a configurable core with a
// selectable load value predictor and prints the run's metrics.
//
// The simulation is described by a declarative spec (internal/spec):
// flags compile into it, -spec loads one from JSON (full machine and
// predictor control), -preset starts from a named configuration, and
// -dump-spec prints the resolved spec without simulating.
//
// Usage:
//
//	lvpsim -workload gcc2k -predictor composite -entries 1024
//	lvpsim -workload mcf -predictor lvp -entries 4096 -insts 500000
//	lvpsim -workload v8 -predictor eves -budget 32
//	lvpsim -spec sim.json              # run a saved spec
//	lvpsim -preset best-9.6KB -workload gcc2k
//	lvpsim -workload gcc2k -dump-spec  # print the canonical spec JSON
//	lvpsim -list                       # list workload names
//
// Multi-context (SMT) simulation replicates the pipeline's context
// state while sharing its predictors, caches, and TLBs (DESIGN.md
// §14): -contexts N runs N independently-seeded streams of the
// workload, and -workloads assigns one workload per context:
//
//	lvpsim -contexts 4 -workload gcc2k            # 4 salted gcc2k streams
//	lvpsim -workloads gcc2k,mcf -predictor best   # 2-context mix
//	lvpsim -preset smt4 -workload gcc2k           # the 4-context preset
//
// Predictors: none, lvp, sap, cvp, cap, composite, best (composite +
// PC-AM + fusion), eves.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/expt"
	otrace "repro/internal/obs/trace"
	"repro/internal/prof"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracein"
)

// buildGen returns the instruction source: a recorded trace when
// -replay is given, a cursor over the content-addressed artifact cache
// when -trace-cache-dir is set (the baseline and configured runs then
// replay one shared recording, generated or read from disk at most
// once), or a live workload generator.
func buildGen(workload string, insts uint64, replay string, traces *trace.ArtifactStore) (trace.Generator, string, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, "", err
		}
		rd, err := trace.NewTraceReader(f)
		if err != nil {
			return nil, "", err
		}
		return rd, replay, nil
	}
	w, ok := trace.ByName(workload)
	if !ok {
		return nil, "", fmt.Errorf("unknown workload %q (see -list)", workload)
	}
	if traces != nil {
		cur, err := traces.Cursor(w.Name, insts)
		if err == nil {
			return cur, w.Name, nil
		}
		if !errors.Is(err, trace.ErrOversize) {
			return nil, "", err
		}
		// Too big to record under the store budget: run live.
	}
	return w.Build(insts), w.Name, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// buildSpec resolves flags (and -spec/-preset) into the canonical
// simulation spec plus the predictor label responses echo. Explicitly
// set flags override fields of a loaded spec or preset.
func buildSpec(specFile, preset string, fs *flag.FlagSet,
	workload, workloads *string, contexts *int, predictor *string,
	entries, budget *int, am *string, insts, seed *uint64) (spec.Sim, string) {

	var sim spec.Sim
	switch {
	case specFile != "":
		b, err := os.ReadFile(specFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &sim); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", specFile, err))
		}
	case preset != "":
		p, ok := spec.Preset(preset)
		if !ok {
			fatal(fmt.Errorf("unknown preset %q (one of %v)", preset, spec.PresetNames()))
		}
		sim = p
	}

	// Flags the user actually set win over the loaded spec; with no
	// -spec/-preset the flag defaults describe the whole simulation.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fromFlags := specFile == "" && preset == ""
	override := func(name string) bool { return fromFlags || set[name] }

	if override("workloads") && *workloads != "" {
		sim.Workload.Names = nil
		for _, n := range strings.Split(*workloads, ",") {
			sim.Workload.Names = append(sim.Workload.Names, strings.TrimSpace(n))
		}
		// The mix's lead workload is the spec's Name; an explicit
		// -workload must agree (Validate reports the disagreement).
		sim.Workload.Name = sim.Workload.Names[0]
	}
	if set["workload"] || (fromFlags && sim.Workload.Names == nil) || sim.Workload.Name == "" {
		sim.Workload.Name = *workload
	}
	if set["contexts"] || (fromFlags && *contexts > 0) {
		sim.Machine.Contexts = *contexts
	}
	// A -workloads mix without an explicit context count means one
	// context per listed workload.
	if len(sim.Workload.Names) > 1 && !set["contexts"] && sim.Machine.Contexts == 0 {
		sim.Machine.Contexts = len(sim.Workload.Names)
	}
	if override("insts") || sim.Workload.Insts == 0 {
		sim.Workload.Insts = *insts
	}
	if override("seed") || sim.Run.Seed == 0 {
		sim.Run.Seed = *seed
	}
	label := string(sim.Predictor.Family)
	if fromFlags || set["predictor"] {
		sim.Predictor = spec.PredictorSpec{
			Family:     spec.Family(*predictor),
			EntriesPer: *entries,
		}
		switch sim.Predictor.Family {
		case spec.FamilyComposite, spec.FamilyBest:
			sim.Predictor.AM = spec.AMMode(*am)
		case spec.FamilyEVES:
			kb := *budget
			if kb == 0 {
				kb = -1 // this CLI has always spelled "infinite" as 0
			}
			sim.Predictor.BudgetKB = kb
		}
		label = *predictor
	}

	sim.Normalize(spec.Defaults{})
	if label == "" {
		label = string(sim.Predictor.Family)
	}
	return sim, label
}

// runSMT simulates a multi-context spec: one independently-seeded
// stream per hardware context, interleaved on a single pipeline whose
// predictors, caches, and TLBs are shared across contexts. Output
// mirrors the single-context path, plus one line per context.
func runSMT(sim spec.Sim, label string, traces *trace.ArtifactStore, jsonOut bool, phaseSpan func(string) func()) {
	streams := sim.ContextStreams()
	newGens := func() []trace.Generator {
		gens := make([]trace.Generator, len(streams))
		for i, s := range streams {
			if traces != nil {
				cur, err := traces.Cursor(s, sim.Workload.Insts)
				if err == nil {
					gens[i] = cur
					continue
				}
				if !errors.Is(err, trace.ErrOversize) {
					fatal(err)
				}
			}
			g, ok := trace.BuildStream(s, sim.Workload.Insts)
			if !ok {
				fatal(fmt.Errorf("unknown stream %q (see -list)", s))
			}
			gens[i] = g
		}
		return gens
	}
	collect := func(merged stats.Run, p *cpu.Pipeline) expt.SMTResult {
		per := make([]stats.Run, p.NumContexts())
		for i := range per {
			per[i] = p.ContextRun(i)
		}
		return expt.SMTResult{Merged: merged, Per: per}
	}
	emitJSON := func(run, base expt.SMTResult, comp *core.Composite) {
		res := server.NewSMTRunResult(run, base, streams, comp)
		res.Predictor = label
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	cfg := sim.Machine.Config()
	pipe := cpu.Acquire(cfg, nil)
	defer cpu.Release(pipe)

	endBase := phaseSpan("baseline")
	base := collect(pipe.RunSMTCtx(ctx, newGens(), sim.ContextWorkloads(), sim.WorkloadLabel(), "baseline"), pipe)
	endBase()
	if !jsonOut {
		fmt.Printf("baseline:  IPC=%.3f (%d contexts, %d instructions, %d cycles)\n",
			base.Merged.IPC(), len(streams), base.Merged.Instructions, base.Merged.Cycles)
		for i, r := range base.Per {
			fmt.Printf("   ctx%d %-12s IPC=%.3f\n", i, r.Workload+":", r.IPC())
		}
	}
	if sim.Predictor.Family == spec.FamilyNone {
		if jsonOut {
			emitJSON(base, base, nil)
		}
		return
	}

	engine, err := spec.NewEngine(sim.Predictor, sim.Workload.Insts, sim.Run.Seed)
	if err != nil {
		fatal(err)
	}
	comp := server.CompositeFromEngine(engine)
	pipe.Reset(cfg, engine)
	endRun := phaseSpan("run")
	run := collect(pipe.RunSMTCtx(ctx, newGens(), sim.ContextWorkloads(), sim.WorkloadLabel(), label), pipe)
	endRun()
	if jsonOut {
		emitJSON(run, base, comp)
		return
	}
	fmt.Printf("%-9s  IPC=%.3f  speedup=%+.2f%%  coverage=%.1f%%  accuracy=%.4f\n",
		label+":", run.Merged.IPC(), stats.Speedup(run.Merged, base.Merged),
		run.Merged.Coverage(), run.Merged.Accuracy())
	for i, r := range run.Per {
		fmt.Printf("   ctx%d %-12s IPC=%.3f  speedup=%+.2f%%  coverage=%.1f%%  accuracy=%.4f\n",
			i, r.Workload+":", r.IPC(), stats.Speedup(r, base.Per[i]), r.Coverage(), r.Accuracy())
	}
	fmt.Printf("           flushes: value=%d branch=%d memorder=%d\n",
		run.Merged.VPFlushes, run.Merged.BranchFlushes, run.Merged.MemOrderFlushes)
}

func main() {
	var (
		workload  = flag.String("workload", "gcc2k", "workload name")
		workloads = flag.String("workloads", "", "comma-separated per-context workload mix (e.g. gcc2k,mcf); implies -contexts len(mix)")
		contexts  = flag.Int("contexts", 0, "hardware contexts to simulate (0/1 = single; >1 shares predictors, caches, and TLBs across salted streams)")
		listNames = flag.Bool("list", false, "list workload names and exit")
		predictor = flag.String("predictor", "composite", "none|lvp|sap|cvp|cap|composite|best|eves")
		entries   = flag.Int("entries", 1024, "table entries per component")
		budget    = flag.Int("budget", 32, "EVES budget in KB (0 = infinite)")
		insts     = flag.Uint64("insts", 200_000, "instructions to simulate")
		seed      = flag.Uint64("seed", 0xC0FFEE, "simulation seed")
		am        = flag.String("am", "pc", "accuracy monitor for composite: none|m|pc|pcinf")
		specFile  = flag.String("spec", "", "load the simulation spec from this JSON file (flags you set override it)")
		preset    = flag.String("preset", "", "start from a named spec preset (see internal/spec)")
		dumpSpec  = flag.Bool("dump-spec", false, "print the resolved canonical spec as JSON and exit")
		details   = flag.Bool("details", false, "print per-component composite statistics")
		record    = flag.String("record", "", "record the workload's trace to this file and exit")
		replay    = flag.String("replay", "", "simulate a recorded trace file instead of a workload")
		traceFile = flag.String("trace", "", "simulate an external CVP-1-style trace file (LVPX): convert, register as ext:<hash>, run")
		traceInfo = flag.String("trace-info", "", "print an external trace file's header and conversion report, then exit")
		traceDir  = flag.String("trace-cache-dir", "", "content-addressed recorded-trace artifact cache; runs replay a shared recording generated (or read) at most once")
		jsonOut   = flag.Bool("json", false, "emit the run result as one JSON object on stdout")
		traceOut  = flag.String("trace-out", "", "write this run's spans as Chrome trace-event JSON to this file (view in Perfetto)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *listNames {
		for _, n := range trace.Names() {
			fmt.Println(n)
		}
		return
	}

	if *traceInfo != "" {
		data, err := os.ReadFile(*traceInfo)
		if err != nil {
			fatal(err)
		}
		name, _, info, err := tracein.ConvertBytes(data, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload:           %s\n", name)
		fmt.Printf("format version:     %d\n", info.Header.Version)
		fmt.Printf("instructions:       %d\n", info.Insts)
		fmt.Printf("fill seed:          %#x\n", info.Header.Seed)
		fmt.Printf("payload checksum:   %08x\n", info.Header.Checksum)
		classes := []string{"alu", "load", "store", "condBranch", "uncondDirect", "uncondIndirect", "fp", "slowAlu"}
		for c, n := range info.Classes {
			if n > 0 {
				fmt.Printf("  %-16s  %d\n", classes[c], n)
			}
		}
		fmt.Printf("pre-image words:    %d (backfilled %d bytes)\n", info.FootprintWords, info.BackfilledBytes)
		if info.InconsistentLoads > 0 {
			fmt.Printf("inconsistent loads: %d\n", info.InconsistentLoads)
		}
		if info.DroppedSrcRegs > 0 {
			fmt.Printf("dropped src regs:   %d\n", info.DroppedSrcRegs)
		}
		return
	}

	sim, label := buildSpec(*specFile, *preset, flag.CommandLine,
		workload, workloads, contexts, predictor, entries, budget, am, insts, seed)
	if *traceFile != "" {
		// An external trace becomes a first-class workload: convert,
		// register under its content address, and point the spec at it.
		// Validation then runs the normal named-workload path.
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			fatal(err)
		}
		extName, rep, info, err := tracein.ConvertBytes(data, 0)
		if err != nil {
			fatal(err)
		}
		if _, err := trace.RegisterExternal(extName, rep, true); err != nil {
			fatal(err)
		}
		sim.Workload.Name = extName
		sim.Workload.Names = nil
		if sim.Workload.Insts > info.Insts {
			sim.Workload.Insts = info.Insts
		}
		fmt.Fprintf(os.Stderr, "trace %s: %d instructions registered as %s\n", *traceFile, info.Insts, extName)
	}
	if *replay != "" {
		// Replayed traces are not named workloads; validate the rest.
		if err := sim.ValidateConfig(); err != nil {
			fatal(err)
		}
	} else if err := sim.Validate(); err != nil {
		fatal(err)
	}

	if *dumpSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sim); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "canonical hash: %s\n", sim.CanonicalHash())
		return
	}

	if *record != "" {
		w, ok := trace.ByName(sim.Workload.Name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (see -list)", sim.Workload.Name))
		}
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := trace.WriteTrace(f, w.Build(sim.Workload.Insts))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", n, w.Name, *record)
		return
	}

	var traces *trace.ArtifactStore
	if *traceDir != "" {
		if traces, err = trace.NewArtifactStore(*traceDir, 0); err != nil {
			fatal(err)
		}
	}
	newGen := func() trace.Generator {
		gen, _, err := buildGen(sim.Workload.Name, sim.Workload.Insts, *replay, traces)
		if err != nil {
			fatal(err)
		}
		return gen
	}
	name := sim.Workload.Name
	if *replay != "" {
		name = *replay
	}

	// With -trace-out the CLI records the same span shapes the daemon
	// does (a root with baseline/run children) and writes them as Chrome
	// trace-event JSON on the way out.
	var tracer *otrace.Recorder
	rootCtx := context.Background()
	if *traceOut != "" {
		tracer = otrace.NewRecorder("lvpsim", 0)
		var root *otrace.Span
		rootCtx, root = tracer.StartSpan(rootCtx, "lvpsim",
			otrace.String("workload", name), otrace.String("predictor", label))
		defer func() {
			root.Finish()
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			err = otrace.WriteChrome(f, otrace.ChromeEvents(tracer.Service(), tracer.TraceSpans(root.TraceID)))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
		}()
	}
	// phaseSpan opens a child span under the root, or a no-op without
	// -trace-out; the returned func finishes it.
	phaseSpan := func(phase string) func() {
		if tracer == nil {
			return func() {}
		}
		_, s := tracer.StartSpan(rootCtx, phase)
		return s.Finish
	}

	if sim.Machine.NumContexts() > 1 {
		if *replay != "" {
			fatal(errors.New("-replay replays one recorded stream; it cannot drive a multi-context run"))
		}
		runSMT(sim, label, traces, *jsonOut, phaseSpan)
		return
	}

	// emitJSON prints the run/baseline pair in the service's response
	// schema (internal/server.RunResult), keeping CLI and daemon
	// outputs field-for-field identical.
	emitJSON := func(run, base stats.Run, comp *core.Composite) {
		res := server.NewRunResult(run, base, comp)
		res.Predictor = label // echo the request, not the run's config label
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// One pooled pipeline serves both runs: Reset swaps the engine in
	// without reallocating the core's tables. The machine comes from
	// the spec (Table III plus the spec's deltas).
	cfg := sim.Machine.Config()
	pipe := cpu.Acquire(cfg, nil)
	defer cpu.Release(pipe)
	endBase := phaseSpan("baseline")
	base := pipe.Run(newGen(), name, "baseline")
	endBase()
	if !*jsonOut {
		fmt.Printf("baseline:  IPC=%.3f (%d instructions, %d cycles, %d loads)\n",
			base.IPC(), base.Instructions, base.Cycles, base.Loads)
	}
	if sim.Predictor.Family == spec.FamilyNone {
		if *jsonOut {
			emitJSON(base, base, nil)
		}
		return
	}

	// The spec registry is the single mapping from predictor specs to
	// engines; epoch-based machinery (M-AM, fusion) is scaled to the
	// run length exactly as in the experiments and the daemon.
	engine, err := spec.NewEngine(sim.Predictor, sim.Workload.Insts, sim.Run.Seed)
	if err != nil {
		fatal(err)
	}
	comp := server.CompositeFromEngine(engine)

	pipe.Reset(cfg, engine)
	endRun := phaseSpan("run")
	run := pipe.Run(newGen(), name, label)
	endRun()
	if *jsonOut {
		emitJSON(run, base, comp)
		return
	}
	fmt.Printf("%-9s  IPC=%.3f  speedup=%+.2f%%  coverage=%.1f%%  accuracy=%.4f\n",
		label+":", run.IPC(), stats.Speedup(run, base), run.Coverage(), run.Accuracy())
	fmt.Printf("           flushes: value=%d branch=%d memorder=%d\n",
		run.VPFlushes, run.BranchFlushes, run.MemOrderFlushes)

	if *details && comp != nil {
		st := comp.Stats()
		fmt.Printf("           predicted loads: %d of %d probes; multi-confident: %d\n",
			st.PredictedLoads, st.Probes,
			st.ConfidentHistogram[2]+st.ConfidentHistogram[3]+st.ConfidentHistogram[4])
		for c := core.Component(0); c < core.NumComponents; c++ {
			if comp.Component(c) == nil {
				continue
			}
			fmt.Printf("           %v: used=%d correct=%d incorrect=%d\n",
				c, st.UsedBy[c], st.CorrectBy[c], st.IncorrectBy[c])
		}
		fmt.Printf("           storage: %.2fKB\n", comp.StorageKB())
	}
}
