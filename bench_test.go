package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eves"
	"repro/internal/expt"
	"repro/internal/trace"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation, one testing.B benchmark per experiment. Benchmark runs
// use a reduced instruction budget and a stratified workload subsample
// so `go test -bench=.` completes in minutes; cmd/experiments exposes
// the same runners with full control over -insts and -sample.

const (
	benchInsts  = 30_000
	benchSample = 6
)

func benchWorkloads() []string {
	all := trace.Names()
	out := make([]string, 0, benchSample)
	step := float64(len(all)) / float64(benchSample)
	for i := 0; i < benchSample; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		ctx := expt.NewContext(expt.Options{
			Insts:     benchInsts,
			Workloads: benchWorkloads(),
			Seed:      0xC0FFEE,
		})
		res := e.Run(ctx)
		if len(res.Lines) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// BenchmarkTableIV regenerates the predictor parameter table.
func BenchmarkTableIV(b *testing.B) { benchExperiment(b, "tableiv") }

// BenchmarkTableV regenerates the Listing-1 training-latency table.
func BenchmarkTableV(b *testing.B) { benchExperiment(b, "tablev") }

// BenchmarkTableVI regenerates the heterogeneous sizing exploration.
func BenchmarkTableVI(b *testing.B) { benchExperiment(b, "tablevi") }

// BenchmarkFig2 regenerates the oracle load-pattern breakdown.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates the component size sweep.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the prediction-overlap breakdown.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates composite vs best component.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the accuracy monitor comparison.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the smart-training overlap breakdown.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the smart-training speedup comparison.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the table-fusion speedup comparison.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the combined-benefit comparison.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the composite-vs-EVES comparison.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the per-workload composite-vs-EVES table.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkAblations regenerates the mechanism-ablation extension.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// BenchmarkSharedPool regenerates the decoupled-value-array extension.
func BenchmarkSharedPool(b *testing.B) { benchExperiment(b, "sharedpool") }

// BenchmarkVPsec regenerates the fault-detection extension.
func BenchmarkVPsec(b *testing.B) { benchExperiment(b, "vpsec") }

// BenchmarkWindowSweep regenerates the window-size sensitivity study.
func BenchmarkWindowSweep(b *testing.B) { benchExperiment(b, "windowsweep") }

// ---------------------------------------------------------------------
// Microbenchmarks: raw throughput of the building blocks, useful when
// optimizing the simulator itself.

// The two pipeline microbenchmarks measure the simulator's steady
// state, which is how every real consumer runs it: the experiment
// harness and the daemon both reuse pooled pipelines across many runs,
// so trace generation and predictor construction are one-time costs,
// not per-run costs. The trace is recorded once and replayed, the
// pipeline is acquired once and Reset per iteration, and the predictor
// state is cleared in place — the measured region is the simulation
// loop itself. CI runs these with -benchtime=1x as an allocation
// regression gate (see BENCH_hotpath.json for the history).

const benchPipelineInsts = 50_000

// BenchmarkPipelineBaseline measures simulated instructions per second
// of the core model without value prediction.
func BenchmarkPipelineBaseline(b *testing.B) {
	w, _ := trace.ByName("gcc2k")
	rep := trace.Record(w.Build(benchPipelineInsts), 0)
	cfg := cpu.DefaultConfig()
	p := cpu.Acquire(cfg, nil)
	defer cpu.Release(p)
	b.SetBytes(benchPipelineInsts)
	b.ReportAllocs()
	// One warmup run so the simulated-memory clone happens before the
	// measurement: the gate asserts the steady state allocates nothing,
	// even at -benchtime=1x.
	p.Run(rep, "gcc2k", "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Rewind()
		p.Reset(cfg, nil)
		if r := p.Run(rep, "gcc2k", "bench"); r.Instructions != benchPipelineInsts {
			b.Fatalf("short run: %+v", r)
		}
	}
}

// BenchmarkPipelineComposite measures simulation throughput with the
// full composite predictor attached.
func BenchmarkPipelineComposite(b *testing.B) {
	w, _ := trace.ByName("gcc2k")
	rep := trace.Record(w.Build(benchPipelineInsts), 0)
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewPCAM(64),
	})
	eng := cpu.NewCompositeEngine(comp)
	cfg := cpu.DefaultConfig()
	p := cpu.Acquire(cfg, eng)
	defer cpu.Release(p)
	b.SetBytes(benchPipelineInsts)
	b.ReportAllocs()
	p.Run(rep, "gcc2k", "bench") // warmup: clone the memory image outside the measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Rewind()
		comp.ResetState()
		p.Reset(cfg, eng)
		if r := p.Run(rep, "gcc2k", "bench"); r.Instructions != benchPipelineInsts {
			b.Fatalf("short run: %+v", r)
		}
	}
}

// BenchmarkPipelineProgress measures simulation throughput with the
// composite predictor AND the live progress probe attached at a tight
// cadence — the observability configuration lvpd runs jobs under. The
// -benchmem gate asserts the probe keeps the steady state at 0
// allocs/op (TestProgressProbeZeroAlloc in internal/cpu is the hard
// assertion of the same invariant).
func BenchmarkPipelineProgress(b *testing.B) {
	w, _ := trace.ByName("gcc2k")
	rep := trace.Record(w.Build(benchPipelineInsts), 0)
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewMAMEpoch(10_000),
	})
	eng := cpu.NewCompositeEngine(comp)
	cfg := cpu.DefaultConfig()
	p := cpu.Acquire(cfg, eng)
	defer cpu.Release(p)
	var pr cpu.Progress
	b.SetBytes(benchPipelineInsts)
	b.ReportAllocs()
	p.Run(rep, "gcc2k", "bench") // warmup: clone the memory image outside the measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Rewind()
		comp.ResetState()
		p.Reset(cfg, eng)
		p.SetProgress(&pr, 4096)
		if r := p.Run(rep, "gcc2k", "bench"); r.Instructions != benchPipelineInsts {
			b.Fatalf("short run: %+v", r)
		}
	}
	if s, ok := pr.Load(); !ok || s.Instructions != benchPipelineInsts {
		b.Fatalf("probe published nothing useful: %+v ok=%v", s, ok)
	}
}

// BenchmarkPipelineSMT4 measures the 4-context SMT core in the same
// pooled steady state: four salted gcc2k streams recorded once and
// rewound, one pipeline acquired once and Reset per iteration, the
// composite engine shared across contexts and cleared in place. The
// total simulated instruction count matches the single-context
// pipeline benchmarks so ms/op is comparable, and the -benchmem gate
// asserts the multi-context path keeps the steady state at 0
// allocs/op just like the single-context one.
func BenchmarkPipelineSMT4(b *testing.B) {
	const nctx = 4
	const perCtx = benchPipelineInsts / nctx
	streams := make([]string, nctx)
	reps := make([]*trace.Replay, nctx)
	gens := make([]trace.Generator, nctx)
	for i := range streams {
		streams[i] = trace.StreamName("gcc2k", i)
		gen, ok := trace.BuildStream(streams[i], perCtx)
		if !ok {
			b.Fatalf("unknown stream %q", streams[i])
		}
		reps[i] = trace.Record(gen, 0)
		gens[i] = reps[i]
	}
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewPCAM(64),
	})
	eng := cpu.NewCompositeEngine(comp)
	cfg := cpu.DefaultConfig()
	cfg.Contexts = nctx
	p := cpu.Acquire(cfg, eng)
	defer cpu.Release(p)
	b.SetBytes(benchPipelineInsts)
	b.ReportAllocs()
	p.RunSMT(gens, streams, "gcc2k x4", "bench") // warmup: clone the per-context memory images
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range reps {
			rep.Rewind()
		}
		comp.ResetState()
		p.Reset(cfg, eng)
		if r := p.RunSMT(gens, streams, "gcc2k x4", "bench"); r.Instructions != benchPipelineInsts {
			b.Fatalf("short run: %+v", r)
		}
	}
}

// TestReplayedPooledRunMatchesFresh guards the benchmark methodology:
// the steady-state path the pipeline benchmarks measure (recorded
// trace + pooled pipeline) must produce bit-identical results to the
// fresh-everything path, or the benchmarks would be timing a different
// simulation.
func TestReplayedPooledRunMatchesFresh(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	mkEng := func() (cpu.Engine, *core.Composite) {
		c := core.NewComposite(core.CompositeConfig{
			Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewPCAM(64),
		})
		return cpu.NewCompositeEngine(c), c
	}
	const n = 20_000
	freshEng, _ := mkEng()
	fresh := cpu.New(cpu.DefaultConfig(), freshEng).Run(w.Build(n), "gcc2k", "bench")

	rep := trace.Record(w.Build(n), 0)
	cfg := cpu.DefaultConfig()
	eng, comp := mkEng()
	p := cpu.Acquire(cfg, eng)
	defer cpu.Release(p)
	for i := 0; i < 3; i++ {
		rep.Rewind()
		comp.ResetState()
		p.Reset(cfg, eng)
		if got := p.Run(rep, "gcc2k", "bench"); got != fresh {
			t.Fatalf("iteration %d diverged from the fresh run:\n got: %+v\nwant: %+v", i, got, fresh)
		}
	}
}

// BenchmarkCompositeProbe measures the composite's per-load prediction
// cost.
func BenchmarkCompositeProbe(b *testing.B) {
	c := core.NewComposite(core.CompositeConfig{Entries: core.HomogeneousEntries(1024), Seed: 1})
	o := core.Outcome{PC: 0x40, Addr: 0x1000, Value: 7, Size: 8}
	for i := 0; i < 100; i++ {
		c.Train(o, nil, core.Validation{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk := c.Probe(core.Probe{PC: 0x40})
		_ = lk
	}
}

// BenchmarkEVESProbe measures EVES's per-load prediction cost.
func BenchmarkEVESProbe(b *testing.B) {
	e := eves.New(eves.Config{BudgetKB: 32, Seed: 1})
	o := core.Outcome{PC: 0x40, Value: 7}
	for i := 0; i < 200; i++ {
		rec, _, _ := e.Probe(core.Probe{PC: o.PC})
		e.Train(o, rec, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Probe(core.Probe{PC: 0x40})
	}
}

// BenchmarkWorkloadGen measures trace generation throughput.
func BenchmarkWorkloadGen(b *testing.B) {
	w, _ := trace.ByName("v8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen := w.Build(50_000)
		var in trace.Inst
		n := 0
		for gen.Next(&in) {
			n++
		}
		if n == 0 {
			b.Fatal("empty stream")
		}
	}
	b.SetBytes(50_000)
}

// TestBenchmarkIDsCoverRegistry pins the one-bench-per-experiment
// contract: every registered experiment has a benchmark above.
func TestBenchmarkIDsCoverRegistry(t *testing.T) {
	covered := map[string]bool{
		"tableiv": true, "tablev": true, "tablevi": true,
		"fig2": true, "fig3": true, "fig4": true, "fig5": true,
		"fig6": true, "fig7": true, "fig8": true, "fig9": true,
		"fig10": true, "fig11": true, "fig12": true,
		"ablations": true, "sharedpool": true, "vpsec": true,
		"windowsweep": true,
	}
	for _, e := range expt.Registry() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark", e.ID)
		}
	}
	if len(covered) != len(expt.Registry()) {
		t.Errorf("benchmark list (%d) out of sync with registry (%d)", len(covered), len(expt.Registry()))
	}
}

// Example of the registry's discoverability.
func ExampleRegistry() {
	for _, e := range expt.Registry()[:3] {
		fmt.Println(e.ID)
	}
	// Output:
	// tableiv
	// tablev
	// tablevi
}
